package unijoin

import (
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/ingest"
	"unijoin/internal/parallel"
	"unijoin/internal/stream"
)

// This file exports the stripe boundary computation the shard planner
// (internal/shard) and the parallel engine share: quantiles of sampled
// record x-centers, the same boundaries internal/parallel places. The
// sample behind it is cached on the relation's current version —
// computed once, reused by every subsequent parallel query and
// boundary request on that version. Appends carry the sample forward
// by merging in the appended centers (parallel.MergeSamples), so an
// ingesting relation's boundaries keep tracking the data without
// rescanning; a compaction or reload drops the cache and the next
// request resamples the full log.

// sampleFor returns the pinned version's sorted x-center sample,
// computing it from recs (the version's records, already in memory)
// on first use.
func sampleFor(v *ingest.Version, recs []Record) ([]Coord, error) {
	return v.Sample(func() ([]geom.Coord, error) {
		return parallel.SortedCenterSample(recs), nil
	})
}

// centerSample returns the pinned version's cached sample, reading
// the record stream (charged to the workspace counters like any scan)
// when cold.
func centerSample(v *ingest.Version) ([]Coord, error) {
	return v.Sample(func() ([]geom.Coord, error) {
		recs, err := stream.ReadAll(v.File, stream.Records)
		if err != nil {
			return nil, err
		}
		return parallel.SortedCenterSample(recs), nil
	})
}

// StripeBoundaries returns the k-1 internal boundaries that cut this
// relation into k stripe shards balanced by record x-centers —
// strictly increasing, possibly fewer than k-1 when the sampled
// centers are too clustered to support k distinct stripes. The
// underlying x-center sample is cached on the relation's current
// version and maintained across appends, so repeated calls (and
// parallel queries on the same relation) skip the sample scan and
// sort.
func (r *Relation) StripeBoundaries(k int) ([]Coord, error) {
	if r == nil || r.log == nil {
		return nil, fmt.Errorf("%w: stripe boundaries", ErrNilRelation)
	}
	v := r.snapshot()
	sample, err := centerSample(v)
	if err != nil {
		return nil, err
	}
	u := r.ws.universeFor(v.MBR)
	return parallel.NewPartitionerFromSamples(u, k, sample).Boundaries(), nil
}

// StripeBoundaries returns the k-1 internal boundaries that cut the
// named relations into k stripe shards, balancing the union of their
// sampled x-centers — the planning step of sharded serving: every
// shard then loads the slice of each relation overlapping its stripe
// and answers joins between any of them. Each relation's sample is
// cached on its current version (maintained across appends,
// invalidated by compaction or reload), so planning over a stable
// catalog is a linear merge of pre-sorted samples with no serial
// sort.
func (c *Catalog) StripeBoundaries(k int, names ...string) ([]Coord, error) {
	if len(names) == 0 {
		names = c.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("unijoin: stripe boundaries need at least one relation")
	}
	samples := make([][]Coord, 0, len(names))
	mbr := geom.EmptyRect()
	for _, name := range names {
		rel, ok := c.Get(name)
		if !ok {
			return nil, fmt.Errorf("unijoin: relation %q is not in the catalog", name)
		}
		v := rel.snapshot()
		sample, err := centerSample(v)
		if err != nil {
			return nil, err
		}
		samples = append(samples, sample)
		mbr = mbr.Union(v.MBR)
	}
	u := c.ws.universeFor(mbr)
	return parallel.NewPartitionerFromSamples(u, k, samples...).Boundaries(), nil
}
