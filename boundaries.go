package unijoin

import (
	"fmt"

	"unijoin/internal/geom"
	"unijoin/internal/parallel"
	"unijoin/internal/stream"
)

// This file exports the stripe boundary computation the shard planner
// (internal/shard) and the parallel engine share: quantiles of sampled
// record x-centers, the same boundaries internal/parallel places. The
// per-relation sample behind it is cached on the Relation — computed
// once, reused by every subsequent parallel query and boundary request
// on that relation — so a stable catalog pays the serial ≤4096-sample
// sort once instead of per query. A reloaded catalog name is a new
// Relation and starts with a cold cache.

// sortedSampleFrom returns the relation's cached sorted x-center
// sample, computing it from recs (the relation's records, already in
// memory) on first use.
func (r *Relation) sortedSampleFrom(recs []Record) []Coord {
	r.sampleMu.Lock()
	defer r.sampleMu.Unlock()
	if !r.sampled {
		r.sample = parallel.SortedCenterSample(recs)
		r.sampled = true
	}
	return r.sample
}

// centerSample returns the cached sample, reading the record stream
// (charged to the workspace counters like any scan) when cold.
func (r *Relation) centerSample() ([]Coord, error) {
	r.sampleMu.Lock()
	cached := r.sampled
	sample := r.sample
	r.sampleMu.Unlock()
	if cached {
		return sample, nil
	}
	recs, err := stream.ReadAll(r.file, stream.Records)
	if err != nil {
		return nil, err
	}
	return r.sortedSampleFrom(recs), nil
}

// StripeBoundaries returns the k-1 internal boundaries that cut this
// relation into k stripe shards balanced by record x-centers —
// strictly increasing, possibly fewer than k-1 when the sampled
// centers are too clustered to support k distinct stripes. The
// underlying x-center sample is cached on the relation, so repeated
// calls (and parallel queries on the same relation) skip the sample
// scan and sort.
func (r *Relation) StripeBoundaries(k int) ([]Coord, error) {
	if r == nil || r.file == nil {
		return nil, fmt.Errorf("%w: stripe boundaries", ErrNilRelation)
	}
	sample, err := r.centerSample()
	if err != nil {
		return nil, err
	}
	u := r.ws.universeFor(r.mbr)
	return parallel.NewPartitionerFromSamples(u, k, sample).Boundaries(), nil
}

// StripeBoundaries returns the k-1 internal boundaries that cut the
// named relations into k stripe shards, balancing the union of their
// sampled x-centers — the planning step of sharded serving: every
// shard then loads the slice of each relation overlapping its stripe
// and answers joins between any of them. Each relation's sample is
// cached (invalidated when the name is dropped and reloaded), so
// planning over a stable catalog is a linear merge of pre-sorted
// samples with no serial sort.
func (c *Catalog) StripeBoundaries(k int, names ...string) ([]Coord, error) {
	if len(names) == 0 {
		names = c.Names()
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("unijoin: stripe boundaries need at least one relation")
	}
	samples := make([][]Coord, 0, len(names))
	mbr := geom.EmptyRect()
	for _, name := range names {
		rel, ok := c.Get(name)
		if !ok {
			return nil, fmt.Errorf("unijoin: relation %q is not in the catalog", name)
		}
		sample, err := rel.centerSample()
		if err != nil {
			return nil, err
		}
		samples = append(samples, sample)
		mbr = mbr.Union(rel.mbr)
	}
	u := c.ws.universeFor(mbr)
	return parallel.NewPartitionerFromSamples(u, k, samples...).Boundaries(), nil
}
