package unijoin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesCancelSharedWorkspace runs mixed-algorithm
// queries concurrently on ONE workspace — the contract the query
// service relies on — with one of them canceled mid-stream. Run under
// -race (CI does) this checks the simulated disk's and the sweep
// kernels' shared-state discipline; without -race it still checks
// that concurrent queries neither corrupt each other's results nor
// leak cancellation into their neighbors.
func TestConcurrentQueriesCancelSharedWorkspace(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(brute(ra, rb)))

	algs := []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM, AlgST, AlgBFRJ, AlgParallel}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(algs)+4)

	// Full joins, every algorithm twice, all at once.
	for round := 0; round < 2; round++ {
		for _, alg := range algs {
			wg.Add(1)
			go func(alg Algorithm) {
				defer wg.Done()
				res, err := ws.Query(a, b).Algorithm(alg).CountOnly().Run(context.Background())
				if err == nil && res.Count() != want {
					err = fmt.Errorf("%v: got %d pairs, want %d", alg, res.Count(), want)
				}
				errs <- err
			}(alg)
		}
	}
	// Streaming queries canceled mid-stream: the first batch pulls the
	// plug, and the query must come back with ErrCanceled while the
	// concurrent full joins above stay unaffected. These run on a
	// bigger relation pair (same workspace) so the join always spans
	// several batches and cancellation poll windows.
	u := NewRect(0, 0, 1000, 1000)
	bigA, err := ws.AddNamedRelation("bigA", demoRecords(11, 20_000, u))
	if err != nil {
		t.Fatal(err)
	}
	bigB, err := ws.AddNamedRelation("bigB", demoRecords(12, 20_000, u))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgPQ, AlgSSSJ} {
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			_, err := ws.Query(bigA, bigB).Algorithm(alg).
				EmitBatch(func([]Pair) { cancel() }).
				Run(ctx)
			if err == nil {
				err = fmt.Errorf("%v: canceled mid-stream yet finished cleanly", alg)
			} else if !errors.Is(err, ErrCanceled) {
				err = fmt.Errorf("%v: want ErrCanceled, got %w", alg, err)
			} else {
				err = nil
			}
			errs <- err
		}(alg)
	}
	// Window queries riding alongside.
	for _, rel := range []*Relation{a, b} {
		wg.Add(1)
		go func(rel *Relation) {
			defer wg.Done()
			n, err := rel.WindowQuery(context.Background(), NewRect(0, 0, 500, 500), nil)
			if err == nil && n == 0 {
				err = errors.New("window query found nothing")
			}
			errs <- err
		}(rel)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
