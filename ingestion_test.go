package unijoin

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// appendDelta returns a batch of records with IDs starting at idBase.
func appendDelta(seed int64, n, idBase int, u Rect) []Record {
	recs := demoRecords(seed, n, u)
	for i := range recs {
		recs[i].ID = uint32(idBase + i)
	}
	return recs
}

// TestAppendEpochIsolationAllAlgorithms is the core live-ingestion
// property, per algorithm: a query that has already started (pinned
// its epoch, streamed its first batch) never observes an append that
// completes while it runs — its pair set is exactly the pre-append
// reference — and a query started after the append observes exactly
// the full set. Each algorithm straddles its own append, so the test
// also exercises repeated incremental R-tree growth.
func TestAppendEpochIsolationAllAlgorithms(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	ra := demoRecords(21, 700, u)
	rb := demoRecords(22, 600, u)
	a, err := ws.AddNamedRelation("A", ra)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddNamedRelation("B", rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}

	pairSet := func(pairs []Pair) map[Pair]bool {
		out := make(map[Pair]bool, len(pairs))
		for _, p := range pairs {
			out[p] = true
		}
		return out
	}
	sameSet := func(got map[Pair]bool, want map[Pair]bool) error {
		if len(got) != len(want) {
			return fmt.Errorf("%d pairs, want %d", len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				return fmt.Errorf("missing pair %v", p)
			}
		}
		return nil
	}

	cur := append([]Record(nil), ra...)
	algs := []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM, AlgST, AlgAuto, AlgBFRJ, AlgParallel}
	for i, alg := range algs {
		t.Run(alg.String(), func(t *testing.T) {
			wantBefore := brute(cur, rb)
			delta := appendDelta(int64(40+i), 150, len(cur), u)

			// Start the straddling query and hold it open at its first
			// result batch; the append completes mid-stream.
			started := make(chan struct{})
			unblock := make(chan struct{})
			var once sync.Once
			var got []Pair
			done := make(chan error, 1)
			go func() {
				_, err := ws.Query(a, b).Algorithm(alg).EmitBatch(func(batch []Pair) {
					once.Do(func() {
						close(started)
						<-unblock
					})
					got = append(got, batch...)
				}).Run(context.Background())
				done <- err
			}()
			<-started
			res, err := a.Append(delta)
			if err != nil {
				t.Fatal(err)
			}
			if res.Appended != len(delta) {
				t.Fatalf("append accepted %d of %d", res.Appended, len(delta))
			}
			close(unblock)
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if err := sameSet(pairSet(got), wantBefore); err != nil {
				t.Fatalf("straddling %v query observed the append: %v", alg, err)
			}

			// A query started after the append observes all of it.
			cur = append(cur, delta...)
			wantAfter := brute(cur, rb)
			after, err := ws.Query(a, b).Algorithm(alg).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			afterSet := make(map[Pair]bool)
			for p := range after.Pairs() {
				afterSet[p] = true
			}
			if err := sameSet(afterSet, wantAfter); err != nil {
				t.Fatalf("post-append %v query: %v", alg, err)
			}
		})
	}
	if a.DeltaRecords() != int64(len(algs)*150) {
		t.Fatalf("delta records %d, want %d", a.DeltaRecords(), len(algs)*150)
	}

	// Compaction rebuilds the packed layout without changing answers.
	did, err := a.Compact()
	if err != nil || !did {
		t.Fatalf("compact: did=%v err=%v", did, err)
	}
	if a.DeltaRecords() != 0 {
		t.Fatalf("delta records %d after compaction", a.DeltaRecords())
	}
	res, err := ws.Query(a, b).Algorithm(AlgST).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Count(), int64(len(brute(cur, rb))); got != want {
		t.Fatalf("post-compaction count %d, want %d", got, want)
	}
}

// TestConcurrentAppendsWithStreamingQueries is the satellite race
// test, direct flavor: one writer streams append batches in while
// join and window queries stream out, and every query's result set
// must exactly equal the reference for SOME epoch within the bracket
// observed around its run — no torn reads, no mixed epochs. Reference
// counts are strictly increasing in the batch number, so the matched
// epoch is unique. Run under -race (CI does).
func TestConcurrentAppendsWithStreamingQueries(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	ra := demoRecords(31, 600, u)
	rb := demoRecords(32, 500, u)
	const batches = 5
	const batchSize = 80

	a, err := ws.AddNamedRelation("A", ra)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddNamedRelation("B", rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	epoch0 := a.Epoch() // appends bump the epoch by one per batch

	// Reference pair sets and window ID sets for each prefix k.
	win := NewRect(200, 200, 700, 700)
	deltas := make([][]Record, batches)
	joinRef := make([]map[Pair]bool, batches+1)
	winRef := make([]map[ID]bool, batches+1)
	prefix := append([]Record(nil), ra...)
	for k := 0; k <= batches; k++ {
		joinRef[k] = brute(prefix, rb)
		ids := make(map[ID]bool)
		for _, r := range prefix {
			if r.Rect.Intersects(win) {
				ids[r.ID] = true
			}
		}
		winRef[k] = ids
		if k < batches {
			deltas[k] = appendDelta(int64(60+k), batchSize, len(prefix), u)
			prefix = append(prefix, deltas[k]...)
		}
	}
	for k := 0; k < batches; k++ {
		if len(joinRef[k+1]) <= len(joinRef[k]) || len(winRef[k+1]) <= len(winRef[k]) {
			t.Fatalf("reference counts not strictly increasing at batch %d; pick new seeds", k)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	appendsDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(appendsDone)
		for _, d := range deltas {
			if _, err := a.Append(d); err != nil {
				errs <- err
				return
			}
		}
	}()

	// matchEpoch finds the unique k whose reference count matches and
	// checks it lies in the observed bracket and the sets agree.
	checkJoin := func(alg Algorithm, got map[Pair]bool, k1, k2 int64) error {
		for k := k1; k <= k2; k++ {
			if int64(len(joinRef[k])) != int64(len(got)) {
				continue
			}
			for p := range got {
				if !joinRef[k][p] {
					return fmt.Errorf("%v: pair %v not in epoch %d reference", alg, p, k)
				}
			}
			return nil
		}
		return fmt.Errorf("%v: %d pairs matches no epoch in [%d,%d]", alg, len(got), k1, k2)
	}

	for _, alg := range []Algorithm{AlgPQ, AlgSSSJ, AlgST, AlgParallel} {
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			for {
				select {
				case <-appendsDone:
					return
				default:
				}
				k1 := a.Epoch() - epoch0
				res, err := ws.Query(a, b).Algorithm(alg).Run(context.Background())
				if err != nil {
					errs <- fmt.Errorf("%v: %w", alg, err)
					return
				}
				k2 := a.Epoch() - epoch0
				got := make(map[Pair]bool)
				for p := range res.Pairs() {
					got[p] = true
				}
				if err := checkJoin(alg, got, k1, k2); err != nil {
					errs <- err
					return
				}
			}
		}(alg)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-appendsDone:
				return
			default:
			}
			k1 := a.Epoch() - epoch0
			got := make(map[ID]bool)
			n, err := a.WindowQuery(context.Background(), win, func(r Record) { got[r.ID] = true })
			if err != nil {
				errs <- fmt.Errorf("window: %w", err)
				return
			}
			k2 := a.Epoch() - epoch0
			if int64(len(got)) != n {
				errs <- fmt.Errorf("window: emitted %d but counted %d", len(got), n)
				return
			}
			ok := false
			for k := k1; k <= k2 && !ok; k++ {
				if len(winRef[k]) != len(got) {
					continue
				}
				ok = true
				for id := range got {
					if !winRef[k][id] {
						errs <- fmt.Errorf("window: id %d not in epoch %d reference", id, k)
						return
					}
				}
			}
			if !ok {
				errs <- fmt.Errorf("window: %d records matches no epoch in [%d,%d]", len(got), k1, k2)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// After the dust settles: the final epoch sees everything exactly.
	res, err := ws.Query(a, b).Algorithm(AlgPQ).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Count(), int64(len(joinRef[batches])); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
}

// TestStripeBoundariesTrackAppends pins the sample-maintenance
// satellite at the public API: a relation loaded left-heavy and then
// appended right-heavy must move its stripe boundaries right — the
// cached sample absorbed the appended centers — and the boundaries
// must stay strictly increasing and usable.
func TestStripeBoundariesTrackAppends(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	left := demoRecords(71, 2000, NewRect(0, 0, 100, 1000))
	a, err := ws.AddNamedRelation("A", left)
	if err != nil {
		t.Fatal(err)
	}
	before, err := a.StripeBoundaries(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0] > 100 {
		t.Fatalf("left-heavy boundary %v should sit inside [0,100]", before)
	}

	right := appendDelta(72, 2000, len(left), NewRect(900, 0, 1000, 1000))
	if _, err := a.Append(right); err != nil {
		t.Fatal(err)
	}
	after, err := a.StripeBoundaries(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0] <= 100 {
		t.Fatalf("boundary %v did not move right after a right-heavy append (was %v)", after, before)
	}

	// The catalog-level planner sees the same maintained sample.
	cat := NewCatalogOn(ws)
	if _, err := cat.Load("planned", demoRecords(73, 500, u), false); err != nil {
		t.Fatal(err)
	}
	bounds, err := cat.StripeBoundaries(4, "planned")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			t.Fatalf("catalog boundaries not strictly increasing: %v", bounds)
		}
	}
}

// BenchmarkIngestThroughput measures sustained append throughput:
// each iteration appends one 1000-record batch, with epoch
// publication, threshold compaction, and (for the indexed case)
// incremental copy-on-write R-tree growth all inside the measured
// time. The records/s metric is the EXPERIMENTS.md ingest row.
func BenchmarkIngestThroughput(b *testing.B) {
	const batch = 1000
	u := NewRect(0, 0, 1000, 1000)
	for _, indexed := range []bool{false, true} {
		name := "plain"
		if indexed {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			ws := NewWorkspace()
			ws.SetUniverse(u)
			rel, err := ws.AddRelation(demoRecords(31, 20000, u))
			if err != nil {
				b.Fatal(err)
			}
			if indexed {
				if err := rel.BuildIndex(); err != nil {
					b.Fatal(err)
				}
			}
			proto := demoRecords(32, batch, u)
			delta := make([]Record, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(delta, proto)
				for j := range delta {
					delta[j].ID = uint32(20000 + i*batch + j)
				}
				b.StartTimer()
				if _, err := rel.Append(delta); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
