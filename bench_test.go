package unijoin_test

// Benchmarks regenerating each table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// runs the corresponding experiment end to end — data generation,
// index construction, join, and cost accounting on the simulated
// machines — at a reduced scale chosen so `go test -bench=.` finishes
// in minutes. Run `go run ./cmd/sjbench` for the full printed tables
// at the default 1/100 scale, or pass -scale to push further.
//
// Benchmark output is wall time of the whole experiment on the host;
// the interesting simulated numbers are printed by sjbench and
// recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"unijoin"

	"unijoin/internal/datagen"
	"unijoin/internal/experiments"
	"unijoin/internal/parallel"
	"unijoin/internal/rtree"
	"unijoin/internal/tiger"
)

// benchConfig scales the experiments for benchmarking: all six data
// sets at 1/500 of the paper's sizes (large enough that every tree
// outgrows the scaled buffer pool on the DISK sets).
func benchConfig(b *testing.B) experiments.Config {
	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
	}
	if testing.Short() {
		cfg.Sets = []string{"NJ", "NY"}
	}
	return cfg
}

// runExperiment executes one registry experiment b.N times.
func runExperiment(b *testing.B, id string) {
	cfg := benchConfig(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunTable(context.Background(), id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTable1MachineModels regenerates Table 1 (machine constants
// and derived random/sequential cost ratios).
func BenchmarkTable1MachineModels(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2DatasetBuild regenerates Table 2: data set sizes,
// R-tree sizes, and join output cardinalities.
func BenchmarkTable2DatasetBuild(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3PQMemory regenerates Table 3: the PQ join's priority
// queue and sweep structure memory high-water marks.
func BenchmarkTable3PQMemory(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4PageRequests regenerates Table 4: pages requested by
// PQ (optimal) and ST (pool-dependent) against the lower bound.
func BenchmarkTable4PageRequests(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig2EstimatedVsObserved regenerates Figure 2: estimated
// versus observed PQ/ST costs on all three machines.
func BenchmarkFig2EstimatedVsObserved(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3AllAlgorithms regenerates Figure 3: observed costs of
// SSSJ, PBSM, PQ, and ST on all three machines.
func BenchmarkFig3AllAlgorithms(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkSelectiveCrossover regenerates the Section 6.3 selective
// join sweep with the cost-model crossover.
func BenchmarkSelectiveCrossover(b *testing.B) {
	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
		Sets:  []string{"DISK1"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Selective(context.Background(), cfg, "DISK1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneIndexStrategies compares the strategies for the
// one-index case the paper's Section 2 surveys: unified PQ, seeded
// tree + ST, indexed nested loop, and ignoring the index.
func BenchmarkOneIndexStrategies(b *testing.B) {
	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
		Sets:  []string{"DISK1"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OneIndex(context.Background(), cfg, "DISK1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBFRJVsST compares depth-first and breadth-first index joins
// across buffer pool sizes.
func BenchmarkBFRJVsST(b *testing.B) {
	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40},
		Sets:  []string{"DISK1"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BFRJCompare(context.Background(), cfg, "DISK1"); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks (design choices DESIGN.md calls out).

// BenchmarkAblationSweepStructures compares Striped- and Forward-Sweep
// inside SSSJ (the 2-5x claim of Arge et al. [4]).
func BenchmarkAblationSweepStructures(b *testing.B) { runExperiment(b, "abl-sweep") }

// BenchmarkAblationSTBufferPool sweeps ST's buffer pool size.
func BenchmarkAblationSTBufferPool(b *testing.B) { runExperiment(b, "abl-pool") }

// BenchmarkAblationPackingPolicy compares 75%+20% packing with 100%.
func BenchmarkAblationPackingPolicy(b *testing.B) { runExperiment(b, "abl-pack") }

// BenchmarkAblationPBSMTiles compares PBSM tile resolutions.
func BenchmarkAblationPBSMTiles(b *testing.B) { runExperiment(b, "abl-tiles") }

// BenchmarkAblationPQLeafStreaming quantifies the Section 4
// leaf-streaming optimization of the scanner.
func BenchmarkAblationPQLeafStreaming(b *testing.B) { runExperiment(b, "abl-leafstream") }

// BenchmarkAblationLayoutShuffle measures ST and PQ on bulk-loaded
// versus shuffled index layouts (Section 6.2).
func BenchmarkAblationLayoutShuffle(b *testing.B) { runExperiment(b, "abl-layout") }

// Micro-benchmarks of the hot kernels, for regression tracking.

// BenchmarkKernelSortedScan measures raw sorted extraction from an
// R-tree (the PQ index adapter).
func BenchmarkKernelSortedScan(b *testing.B) {
	cfg := tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40}
	env, err := experiments.Prepare(experiments.Config{Tiger: cfg}, tiger.NY)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := env.RoadsTree.Scanner(rtree.StoreReader{Store: env.Store})
		n := 0
		for {
			_, ok, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if int64(n) != env.RoadsTree.NumRecords() {
			b.Fatalf("scanned %d of %d", n, env.RoadsTree.NumRecords())
		}
	}
}

// Wall-clock benchmarks of the parallel in-memory engine — the
// non-simulated performance trajectory. Unlike everything above, these
// numbers are real time on the host, so they are the ones that should
// improve as the engine scales.

// BenchmarkParallelJoin measures the partition-parallel sweep on the
// 100k-record uniform workload against the serial sort-and-sweep
// baseline. Every sub-benchmark asserts the pair count matches the
// serial sweep exactly; on a multicore host the speedup at
// parallelism-4 is the headline scaling number (run with
// `go test -bench=ParallelJoin -cpu N` to pin GOMAXPROCS).
func BenchmarkParallelJoin(b *testing.B) {
	u := unijoin.NewRect(0, 0, 100_000, 100_000)
	ra := datagen.Uniform(1, 100_000, u, 40)
	rb := datagen.Uniform(2, 100_000, u, 40)
	o := parallel.Options{Universe: u}
	base, err := parallel.Serial(context.Background(), ra, rb, o)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := parallel.Serial(context.Background(), ra, rb, o)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Pairs != base.Pairs {
				b.Fatalf("serial pairs = %d, want %d", rep.Pairs, base.Pairs)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			po := o
			po.Workers = workers
			for i := 0; i < b.N; i++ {
				rep, err := parallel.Join(context.Background(), ra, rb, po)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Pairs != base.Pairs {
					b.Fatalf("parallelism-%d pairs = %d, want %d", workers, rep.Pairs, base.Pairs)
				}
			}
		})
	}
}

// BenchmarkParallelJoinEmitModes compares the three result-delivery
// modes on the parallel engine: counting only (no callback at all),
// the per-pair Emit callback, and the pooled EmitBatch fast path that
// amortizes the callback indirection over whole partition buffers.
func BenchmarkParallelJoinEmitModes(b *testing.B) {
	u := unijoin.NewRect(0, 0, 100_000, 100_000)
	ra := datagen.Uniform(1, 100_000, u, 40)
	rb := datagen.Uniform(2, 100_000, u, 40)
	base := parallel.Options{Universe: u, Workers: 2}
	b.Run("count-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Join(context.Background(), ra, rb, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("emit", func(b *testing.B) {
		b.ReportAllocs()
		o := base
		var n int64
		o.Emit = func(unijoin.Pair) { n++ }
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Join(context.Background(), ra, rb, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("emitbatch", func(b *testing.B) {
		b.ReportAllocs()
		o := base
		var n int64
		o.EmitBatch = func(ps []unijoin.Pair) { n += int64(len(ps)) }
		for i := 0; i < b.N; i++ {
			if _, err := parallel.Join(context.Background(), ra, rb, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelJoinClustered is BenchmarkParallelJoin on the
// TIGER-like clustered workload, where quantile stripe boundaries and
// partition oversubscription carry the load balance.
func BenchmarkParallelJoinClustered(b *testing.B) {
	u := unijoin.NewRect(0, 0, 100_000, 100_000)
	terr := datagen.NewTerrain(1997, u, 40)
	ra := datagen.Roads(terr, 1, 100_000, datagen.RoadParams{})
	rb := datagen.Hydro(terr, 2, 60_000, datagen.HydroParams{})
	o := parallel.Options{Universe: u}
	base, err := parallel.Serial(context.Background(), ra, rb, o)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			po := o
			po.Workers = workers
			for i := 0; i < b.N; i++ {
				rep, err := parallel.Join(context.Background(), ra, rb, po)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Pairs != base.Pairs {
					b.Fatalf("pairs = %d, want %d", rep.Pairs, base.Pairs)
				}
			}
		})
	}
}

// BenchmarkKernelRTreeBuild measures Hilbert bulk loading.
func BenchmarkKernelRTreeBuild(b *testing.B) {
	cfg := tiger.Config{Scale: 0.002, Seed: 1997, Clusters: 40}
	roads, _ := cfg.Generate(tiger.NY)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := unijoin.NewWorkspace()
		ws.SetUniverse(tiger.NY.Region)
		rel, err := ws.AddRelation(roads)
		if err != nil {
			b.Fatal(err)
		}
		if err := rel.BuildIndex(); err != nil {
			b.Fatal(err)
		}
	}
}
