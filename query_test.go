package unijoin

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"unijoin/internal/datagen"
)

// queryAlgorithms is every algorithm the equivalence tests cover; all
// of them must produce identical pair sets through every emit mode.
var queryAlgorithms = []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM, AlgST, AlgAuto, AlgBFRJ, AlgParallel}

// bruteWindow is the reference pair set, optionally window-filtered
// with the library's semantics (both records must intersect w).
func bruteWindow(a, b []Record, w *Rect) map[Pair]bool {
	out := map[Pair]bool{}
	for _, ra := range a {
		if w != nil && !ra.Rect.Intersects(*w) {
			continue
		}
		for _, rb := range b {
			if w != nil && !rb.Rect.Intersects(*w) {
				continue
			}
			if ra.Rect.Intersects(rb.Rect) {
				out[Pair{Left: ra.ID, Right: rb.ID}] = true
			}
		}
	}
	return out
}

// TestQueryEmitModesEquivalence is the equivalence property of the
// redesigned API: for every algorithm, with and without a window, the
// Pairs() iterator, the Emit callback, and the EmitBatch callback all
// deliver exactly the brute-force pair set.
func TestQueryEmitModesEquivalence(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	win := NewRect(100, 100, 600, 600)
	windows := []struct {
		name string
		w    *Rect
	}{{"full", nil}, {"window", &win}}

	ctx := context.Background()
	for _, alg := range queryAlgorithms {
		for _, wc := range windows {
			t.Run(alg.String()+"/"+wc.name, func(t *testing.T) {
				want := bruteWindow(ra, rb, wc.w)
				base := func() *Query {
					q := ws.Query(a, b).Algorithm(alg)
					if wc.w != nil {
						q.Window(*wc.w)
					}
					return q
				}

				// Mode 1: collected pairs through the iterator.
				res, err := base().Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Collected() {
					t.Fatal("default run should collect pairs")
				}
				iterated := map[Pair]bool{}
				for p := range res.Pairs() {
					if iterated[p] {
						t.Fatalf("iterator duplicated %v", p)
					}
					iterated[p] = true
				}

				// Mode 2: the per-pair Emit callback.
				emitted := map[Pair]bool{}
				resEmit, err := base().Emit(func(p Pair) {
					if emitted[p] {
						t.Fatalf("Emit duplicated %v", p)
					}
					emitted[p] = true
				}).Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if resEmit.Collected() {
					t.Fatal("Emit queries must not buffer")
				}

				// Mode 3: the batched callback. Batches are reused after
				// the call, so record their contents immediately.
				batched := map[Pair]bool{}
				var batches int
				resBatch, err := base().EmitBatch(func(ps []Pair) {
					batches++
					if len(ps) == 0 {
						t.Fatal("EmitBatch delivered an empty batch")
					}
					for _, p := range ps {
						if batched[p] {
							t.Fatalf("EmitBatch duplicated %v", p)
						}
						batched[p] = true
					}
				}).Run(ctx)
				if err != nil {
					t.Fatal(err)
				}

				for name, got := range map[string]map[Pair]bool{
					"Pairs()": iterated, "Emit": emitted, "EmitBatch": batched,
				} {
					if len(got) != len(want) {
						t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
					}
					for p := range want {
						if !got[p] {
							t.Fatalf("%s: missing %v", name, p)
						}
					}
				}
				for name, n := range map[string]int64{
					"collected": res.Count(), "emit": resEmit.Count(), "batch": resBatch.Count(),
				} {
					if n != int64(len(want)) {
						t.Fatalf("%s run counted %d pairs, want %d", name, n, len(want))
					}
				}
				if len(want) > 0 && batches == 0 {
					t.Fatal("EmitBatch never called despite results")
				}
			})
		}
	}
}

// TestQueryCountOnlyAndIteratorBreak covers the two remaining result
// modes: CountOnly keeps the accounting but yields no pairs, and
// breaking out of the iterator early stops cleanly.
func TestQueryCountOnlyAndIteratorBreak(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	want := int64(len(bruteWindow(ra, rb, nil)))

	res, err := ws.Query(a, b).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != want {
		t.Fatalf("count-only = %d, want %d", res.Count(), want)
	}
	if res.Collected() || res.PairSlice() != nil {
		t.Fatal("count-only must not buffer pairs")
	}
	for range res.Pairs() {
		t.Fatal("count-only iterator must be empty")
	}

	res, err = ws.Query(a, b).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	for range res.Pairs() {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("early break saw %d pairs", seen)
	}
}

// TestQueryFunctionalOptions checks the With* one-shot spelling
// configures the same query as the builder methods.
func TestQueryFunctionalOptions(t *testing.T) {
	ws, a, b, ra, rb := demoWorkspace(t)
	w := NewRect(0, 0, 300, 300)
	want := bruteWindow(ra, rb, &w)

	var n int64
	res, err := ws.Query(a, b,
		WithAlgorithm(AlgSSSJ),
		WithWindow(w),
		WithEmit(func(Pair) { n++ }),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) || res.Count() != n {
		t.Fatalf("functional options: emitted %d, counted %d, want %d", n, res.Count(), len(want))
	}
}

// TestQueryTypedErrors pins the sentinel classification of every
// failure class, through the Query API and the deprecated wrappers.
func TestQueryTypedErrors(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	ctx := context.Background()

	if _, err := ws.Query(nil, b).Run(ctx); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("nil left relation: %v", err)
	}
	if _, err := ws.Query(a, nil).Run(ctx); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("nil right relation: %v", err)
	}
	for _, alg := range []Algorithm{AlgST, AlgBFRJ} {
		if _, err := ws.Query(a, b).Algorithm(alg).Run(ctx); !errors.Is(err, ErrNeedsIndex) {
			t.Fatalf("%v without indexes: %v", alg, err)
		}
	}
	// The deprecated wrappers return the same sentinels.
	if _, err := ws.Join(AlgST, a, b, nil); !errors.Is(err, ErrNeedsIndex) {
		t.Fatalf("deprecated Join ST: %v", err)
	}
	if _, err := ws.ParallelJoin(nil, b, nil); !errors.Is(err, ErrNilRelation) {
		t.Fatalf("deprecated ParallelJoin: %v", err)
	}
	// Emit and EmitBatch are mutually exclusive.
	if _, err := ws.Query(a, b).Emit(func(Pair) {}).EmitBatch(func([]Pair) {}).Run(ctx); err == nil {
		t.Fatal("Emit+EmitBatch must error")
	}
}

// TestQueryPreCanceledContext: a context canceled before Run returns
// ErrCanceled from every algorithm without doing the join.
func TestQueryPreCanceledContext(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := b.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range queryAlgorithms {
		_, err := ws.Query(a, b).Algorithm(alg).Run(ctx)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", alg, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: ErrCanceled must wrap context.Canceled, got %v", alg, err)
		}
	}
	// Multiway and Plan honor the canceled context too.
	if _, err := ws.MultiwayJoin(ctx, []*Relation{a, b}, nil, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("multiway: %v", err)
	}
	if _, err := ws.Plan(ctx, Machine1, a, b, nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("plan: %v", err)
	}
}

// TestQueryCancelMidJoin cancels the context from inside the Emit
// callback — deterministically mid-sweep — and requires the join to
// stop with ErrCanceled instead of running to completion.
func TestQueryCancelMidJoin(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	a, err := ws.AddRelation(datagen.Uniform(7, 4000, u, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddRelation(datagen.Uniform(8, 4000, u, 40))
	if err != nil {
		t.Fatal(err)
	}
	full, err := ws.Query(a, b).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if full.Count() < 1000 {
		t.Fatalf("workload too small to cancel mid-join: %d pairs", full.Count())
	}

	for _, alg := range []Algorithm{AlgPQ, AlgSSSJ, AlgPBSM} {
		ctx, cancel := context.WithCancel(context.Background())
		var emitted atomic.Int64
		_, err := ws.Query(a, b).Algorithm(alg).Emit(func(Pair) {
			if emitted.Add(1) == 100 {
				cancel()
			}
		}).Run(ctx)
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%v: err = %v, want ErrCanceled", alg, err)
		}
		if got := emitted.Load(); got >= full.Count() {
			t.Fatalf("%v: join ran to completion (%d pairs) despite cancel", alg, got)
		}
	}
}

// TestQueryDeadline: an already-expired deadline surfaces as
// ErrCanceled that also matches context.DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, err := ws.Query(a, b).Run(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error must match context.DeadlineExceeded: %v", err)
	}
}

// TestParallelQueryCancelMidJoin cancels a large AlgParallel join
// shortly after it starts; the worker pool must stop and report
// ErrCanceled. Run under -race in CI, this also proves the
// cancellation path is data-race-free.
func TestParallelQueryCancelMidJoin(t *testing.T) {
	u := NewRect(0, 0, 100_000, 100_000)
	ws := NewWorkspace()
	ws.SetUniverse(u)
	a, err := ws.AddRelation(datagen.Uniform(1, 120_000, u, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.AddRelation(datagen.Uniform(2, 120_000, u, 40))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = ws.Query(a, b).Algorithm(AlgParallel).Parallelism(4).Run(ctx)
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		t.Skip("join finished before the cancel landed (very fast host)")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Promptness: the kernel checks every 1024 records, so the abort
	// must come in far under the multi-hundred-ms full join time.
	if elapsed > 10*time.Second {
		t.Fatalf("cancelation took %v", elapsed)
	}
}

// TestResultsExposesAccounting: the Results value carries the same
// accounting the old JoinResult did.
func TestResultsExposesAccounting(t *testing.T) {
	ws, a, b, _, _ := demoWorkspace(t)
	if err := a.BuildIndex(); err != nil {
		t.Fatal(err)
	}
	res, err := ws.Query(a, b).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.IO.Total() == 0 {
		t.Fatal("I/O accounting missing")
	}
	if res.ObservedTotal(Machine1) <= 0 {
		t.Fatal("machine pricing missing")
	}
	if res.PageRequests == 0 {
		t.Fatal("indexed side should report page requests")
	}
	// AlgAuto exposes its decision.
	auto, err := ws.Query(a, b).Algorithm(AlgAuto).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if auto.Decision == nil {
		t.Fatal("auto query must report its decision")
	}
	// AlgParallel exposes the engine report.
	par, err := ws.Query(a, b).Algorithm(AlgParallel).CountOnly().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if par.Parallel == nil || par.Parallel.Workers < 1 {
		t.Fatal("parallel query must carry the engine report")
	}
}
