// Command sjbench regenerates the tables and figures of the paper's
// evaluation on the synthetic TIGER-like data sets and the simulated
// machines of Table 1.
//
// Usage:
//
//	sjbench [-exp id[,id...]] [-scale f] [-sets NJ,NY,...] [-seed n] [-parallel N]
//
// With no -exp flag, every experiment runs in DESIGN.md order:
// table1 table2 table3 table4 fig2 fig3 sel and the ablations. The
// default scale (0.01) shrinks the paper's data sets 100x, with memory
// budgets scaled to match, so the relative shapes of all results are
// preserved while a full run completes in minutes.
//
// With -parallel N, only the wall-clock experiment runs: the
// multicore in-memory engine (internal/parallel) is measured in real
// time against the serial sweep, scaling the worker count up to N.
// This is the non-simulated benchmark path; at the default scale the
// uniform workload is the 100k-record set the benchmark trajectory
// tracks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unijoin/internal/experiments"
	"unijoin/internal/tiger"
)

func main() {
	var (
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs, " "))
		scale    = flag.Float64("scale", 0.01, "data scale relative to the paper's Table 2 sizes, in (0,1]")
		sets     = flag.String("sets", "", "comma-separated data set names (default: all six)")
		seed     = flag.Int64("seed", 1997, "generation seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "run only the wall-clock parallel engine experiment, scaling to N workers")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: *scale, Seed: *seed, Clusters: 40},
	}
	if *sets != "" {
		cfg.Sets = strings.Split(*sets, ",")
	}

	if *parallel > 0 {
		tab, err := experiments.Wallclock(cfg, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sjbench: wallclock: %v\n", err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		return
	}

	ids := experiments.IDs
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := experiments.Run(strings.TrimSpace(id), cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sjbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
