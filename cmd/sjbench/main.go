// Command sjbench regenerates the tables and figures of the paper's
// evaluation on the synthetic TIGER-like data sets and the simulated
// machines of Table 1.
//
// Usage:
//
//	sjbench [-exp id[,id...]] [-scale f] [-sets NJ,NY,...] [-seed n]
//	        [-parallel N] [-timeout d] [-window x1,y1,x2,y2]
//	        [-transport ndjson|binary|both] [-json]
//
// With no -exp flag, every experiment runs in DESIGN.md order:
// table1 table2 table3 table4 fig2 fig3 sel and the ablations. The
// default scale (0.01) shrinks the paper's data sets 100x, with memory
// budgets scaled to match, so the relative shapes of all results are
// preserved while a full run completes in minutes.
//
// With -parallel N, only the wall-clock experiment runs: the
// multicore in-memory engine (internal/parallel) is measured in real
// time against the serial sweep, scaling the worker count up to N.
// This is the non-simulated benchmark path; at the default scale the
// uniform workload is the 100k-record set the benchmark trajectory
// tracks. The table breaks the wall time into the chunked parallel
// distribution prefix ("Part ms") and the sweep phase, and reports
// the two-layer classification: the fraction of records local to one
// stripe and the fraction of pairs emitted without the
// reference-point test. -window restricts the wall-clock joins to the
// given rectangle (it has no effect on the paper-reproduction
// experiments, whose tables are defined over the full data sets).
//
// The transport experiment (-exp transport) boots an in-process
// direct server and a router-fronted shard fleet and measures
// end-to-end join latency under the NDJSON and binary stream
// encodings at three pair-volume tiers; -transport narrows it to one
// encoding.
//
// With -json, every measured run is emitted as one NDJSON object
// (keys derived from the table's column headers, numeric cells as
// JSON numbers) instead of aligned tables — the machine-readable form
// a benchmark trajectory can append to and diff across commits.
//
// Every experiment runs under a context: -timeout bounds the whole
// invocation and Ctrl-C cancels it, so a runaway configuration can be
// interrupted cleanly (exit status 2).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"unijoin"
	"unijoin/internal/experiments"
	"unijoin/internal/tiger"
)

func main() {
	var (
		exp       = flag.String("exp", "", "comma-separated experiment ids (default: all); known: "+strings.Join(experiments.IDs, " "))
		scale     = flag.Float64("scale", 0.01, "data scale relative to the paper's Table 2 sizes, in (0,1]")
		sets      = flag.String("sets", "", "comma-separated data set names (default: all six)")
		seed      = flag.Int64("seed", 1997, "generation seed")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		parallel  = flag.Int("parallel", 0, "run only the wall-clock parallel engine experiment, scaling to N workers")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		window    = flag.String("window", "", "restrict the wall-clock joins to this rectangle: x1,y1,x2,y2")
		transport = flag.String("transport", "both", "stream encodings the transport experiment measures: ndjson, binary, or both")
		jsonOut   = flag.Bool("json", false, "emit results as NDJSON, one object per measured run, instead of tables")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{
		Tiger: tiger.Config{Scale: *scale, Seed: *seed, Clusters: 40},
	}
	if *sets != "" {
		cfg.Sets = strings.Split(*sets, ",")
	}
	if *window != "" {
		r, err := unijoin.ParseRect(*window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sjbench: %v\n", err)
			os.Exit(1)
		}
		cfg.Window = &r
	}
	switch *transport {
	case "both", "":
		cfg.Transports = experiments.TransportModes
	case "ndjson", "binary":
		cfg.Transports = []string{*transport}
	default:
		fmt.Fprintf(os.Stderr, "sjbench: unknown -transport %q (want ndjson, binary, or both)\n", *transport)
		os.Exit(1)
	}

	// print renders one result table in the selected output mode.
	print := func(id string, tab *experiments.Table) {
		if *jsonOut {
			if err := tab.FprintJSONL(os.Stdout); err != nil {
				exitErr(id, err)
			}
			return
		}
		tab.Fprint(os.Stdout)
	}

	if *parallel > 0 {
		tab, err := experiments.Wallclock(ctx, cfg, *parallel)
		if err != nil {
			exitErr("wallclock", err)
		}
		print("wallclock", tab)
		return
	}

	ids := experiments.IDs
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tab, err := experiments.RunTable(ctx, id, cfg)
		if err != nil {
			exitErr(id, err)
		}
		print(id, tab)
	}
}

// exitErr distinguishes cancellation (exit 2) from real failures.
func exitErr(id string, err error) {
	if errors.Is(err, unijoin.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "sjbench: %s: interrupted: %v\n", id, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "sjbench: %s: %v\n", id, err)
	os.Exit(1)
}
