// Command sjjoin joins two record files produced by sjgen and reports
// the result cardinality and the simulated cost on the paper's three
// machines.
//
// Usage:
//
//	sjjoin -a ny.roads.bin -b ny.hydro.bin -alg PQ [-index a,b] [-out pairs.bin]
//	       [-window x1,y1,x2,y2] [-timeout 30s] [-workers N]
//
// Algorithms: PQ (default), SSSJ, PBSM, ST, auto, parallel. ST
// requires "-index a,b"; parallel is the multicore in-memory engine
// (-workers sets its worker count) and reports wall-clock time rather
// than meaningful simulated I/O. With -out, the resulting ID pairs
// are written as 8-byte little-endian records.
//
// The join runs under a context: -timeout bounds it, and Ctrl-C
// (SIGINT/SIGTERM) cancels it mid-run — a canceled join exits with
// status 2 after printing how it was interrupted. -window restricts
// the join to pairs intersecting the given rectangle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unijoin"
	"unijoin/internal/geom"
)

func main() {
	var (
		aPath   = flag.String("a", "", "left input file (20-byte MBR records)")
		bPath   = flag.String("b", "", "right input file")
		alg     = flag.String("alg", "PQ", "algorithm: PQ SSSJ PBSM ST auto parallel")
		index   = flag.String("index", "", "which sides to index: a, b, or a,b")
		out     = flag.String("out", "", "optional output file for result ID pairs")
		workers = flag.Int("workers", 0, "worker count for -alg parallel (default GOMAXPROCS)")
		window  = flag.String("window", "", "restrict the join to this rectangle: x1,y1,x2,y2")
		timeout = flag.Duration("timeout", 0, "abort the join after this long (0 = no limit)")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		fail(fmt.Errorf("both -a and -b are required"))
	}

	// The context every phase of the join runs under: canceled by
	// Ctrl-C, bounded by -timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	recsA, err := unijoin.ReadRecordFile(*aPath)
	if err != nil {
		fail(err)
	}
	recsB, err := unijoin.ReadRecordFile(*bPath)
	if err != nil {
		fail(err)
	}

	ws := unijoin.NewWorkspace()
	a, err := ws.AddNamedRelation(*aPath, recsA)
	if err != nil {
		fail(err)
	}
	b, err := ws.AddNamedRelation(*bPath, recsB)
	if err != nil {
		fail(err)
	}
	for _, side := range strings.Split(*index, ",") {
		switch strings.TrimSpace(side) {
		case "a":
			err = a.BuildIndex()
		case "b":
			err = b.BuildIndex()
		case "":
		default:
			err = fmt.Errorf("unknown -index side %q", side)
		}
		if err != nil {
			fail(err)
		}
	}

	algorithm, err := unijoin.ParseAlgorithm(*alg)
	if err != nil {
		fail(err)
	}

	// Counting only unless -out asks for the pairs; either way the
	// query never buffers the result set in memory.
	q := ws.Query(a, b).
		Algorithm(algorithm).
		Parallelism(*workers).
		CountOnly()
	if *window != "" {
		r, err := unijoin.ParseRect(*window)
		if err != nil {
			fail(err)
		}
		q.Window(r)
	}

	var outFile *os.File
	if *out != "" {
		outFile, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer outFile.Close()
		// Batched writes: one encode loop per batch instead of one
		// callback per pair.
		buf := make([]byte, 0, 1<<16)
		q.EmitBatch(func(batch []unijoin.Pair) {
			buf = buf[:0]
			var rec [geom.PairSize]byte
			for _, p := range batch {
				geom.EncodePair(rec[:], p)
				buf = append(buf, rec[:]...)
			}
			if _, err := outFile.Write(buf); err != nil {
				fail(err)
			}
		})
	}

	start := time.Now()
	res, err := q.Run(ctx)
	if errors.Is(err, unijoin.ErrCanceled) {
		why := "interrupted"
		if errors.Is(err, context.DeadlineExceeded) {
			why = fmt.Sprintf("timed out after %v", *timeout)
		}
		fmt.Fprintf(os.Stderr, "sjjoin: join %s (%v elapsed)\n", why, time.Since(start).Round(time.Millisecond))
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("algorithm:       %s\n", algorithm)
	fmt.Printf("inputs:          %d x %d records\n", a.Len(), b.Len())
	fmt.Printf("result pairs:    %d\n", res.Count())
	fmt.Printf("page accesses:   %d (%d seq reads, %d rand reads, %d writes)\n",
		res.IO.Total(), res.IO.SeqReads, res.IO.RandReads, res.IO.Writes())
	if res.PageRequests > 0 {
		fmt.Printf("index requests:  %d\n", res.PageRequests)
	}
	if res.Decision != nil {
		fmt.Printf("plan:            %s\n", *res.Decision)
	}
	fmt.Printf("host cpu:        %v\n", res.HostCPU)
	for _, m := range unijoin.Machines {
		fmt.Printf("%-28s cpu %7.2fs  io %7.2fs  total %7.2fs\n",
			m.Name+":", res.CPUTime(m).Seconds(),
			res.ObservedIOTime(m).Seconds(), res.ObservedTotal(m).Seconds())
	}
	if outFile != nil {
		fmt.Printf("pairs written:   %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjjoin:", err)
	os.Exit(1)
}
