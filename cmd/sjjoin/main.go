// Command sjjoin joins two record files produced by sjgen and reports
// the result cardinality and the simulated cost on the paper's three
// machines.
//
// Usage:
//
//	sjjoin -a ny.roads.bin -b ny.hydro.bin -alg PQ [-index a,b] [-out pairs.bin]
//
// Algorithms: PQ (default), SSSJ, PBSM, ST, auto, parallel. ST
// requires "-index a,b"; parallel is the multicore in-memory engine
// (-workers sets its worker count) and reports wall-clock time rather
// than meaningful simulated I/O. With -out, the resulting ID pairs
// are written as 8-byte little-endian records.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"unijoin"
	"unijoin/internal/geom"
)

func main() {
	var (
		aPath   = flag.String("a", "", "left input file (20-byte MBR records)")
		bPath   = flag.String("b", "", "right input file")
		alg     = flag.String("alg", "PQ", "algorithm: PQ SSSJ PBSM ST auto parallel")
		index   = flag.String("index", "", "which sides to index: a, b, or a,b")
		out     = flag.String("out", "", "optional output file for result ID pairs")
		workers = flag.Int("workers", 0, "worker count for -alg parallel (default GOMAXPROCS)")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" {
		fail(fmt.Errorf("both -a and -b are required"))
	}

	recsA, err := readRecords(*aPath)
	if err != nil {
		fail(err)
	}
	recsB, err := readRecords(*bPath)
	if err != nil {
		fail(err)
	}

	ws := unijoin.NewWorkspace()
	a, err := ws.AddNamedRelation(*aPath, recsA)
	if err != nil {
		fail(err)
	}
	b, err := ws.AddNamedRelation(*bPath, recsB)
	if err != nil {
		fail(err)
	}
	for _, side := range strings.Split(*index, ",") {
		switch strings.TrimSpace(side) {
		case "a":
			err = a.BuildIndex()
		case "b":
			err = b.BuildIndex()
		case "":
		default:
			err = fmt.Errorf("unknown -index side %q", side)
		}
		if err != nil {
			fail(err)
		}
	}

	algorithm, err := parseAlg(*alg)
	if err != nil {
		fail(err)
	}

	var outFile *os.File
	var emit func(unijoin.Pair)
	if *out != "" {
		outFile, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer outFile.Close()
		buf := make([]byte, geom.PairSize)
		emit = func(p unijoin.Pair) {
			geom.EncodePair(buf, p)
			if _, err := outFile.Write(buf); err != nil {
				fail(err)
			}
		}
	}

	res, err := ws.Join(algorithm, a, b, &unijoin.JoinOptions{Emit: emit, Parallelism: *workers})
	if err != nil {
		fail(err)
	}

	fmt.Printf("algorithm:       %s\n", algorithm)
	fmt.Printf("inputs:          %d x %d records\n", a.Len(), b.Len())
	fmt.Printf("result pairs:    %d\n", res.Pairs)
	fmt.Printf("page accesses:   %d (%d seq reads, %d rand reads, %d writes)\n",
		res.IO.Total(), res.IO.SeqReads, res.IO.RandReads, res.IO.Writes())
	if res.PageRequests > 0 {
		fmt.Printf("index requests:  %d\n", res.PageRequests)
	}
	if res.Decision != nil {
		fmt.Printf("plan:            %s\n", *res.Decision)
	}
	fmt.Printf("host cpu:        %v\n", res.HostCPU)
	for _, m := range unijoin.Machines {
		fmt.Printf("%-28s cpu %7.2fs  io %7.2fs  total %7.2fs\n",
			m.Name+":", res.CPUTime(m).Seconds(),
			res.ObservedIOTime(m).Seconds(), res.ObservedTotal(m).Seconds())
	}
	if outFile != nil {
		fmt.Printf("pairs written:   %s\n", *out)
	}
}

func parseAlg(s string) (unijoin.Algorithm, error) {
	switch strings.ToUpper(s) {
	case "PQ":
		return unijoin.AlgPQ, nil
	case "SSSJ":
		return unijoin.AlgSSSJ, nil
	case "PBSM":
		return unijoin.AlgPBSM, nil
	case "ST":
		return unijoin.AlgST, nil
	case "AUTO":
		return unijoin.AlgAuto, nil
	case "PARALLEL":
		return unijoin.AlgParallel, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func readRecords(path string) ([]unijoin.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data)%geom.RecordSize != 0 {
		return nil, fmt.Errorf("%s: %d bytes is not a whole number of %d-byte records",
			path, len(data), geom.RecordSize)
	}
	recs := make([]unijoin.Record, 0, len(data)/geom.RecordSize)
	for off := 0; off < len(data); off += geom.RecordSize {
		recs = append(recs, geom.DecodeRecord(data[off:]))
	}
	return recs, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjjoin:", err)
	os.Exit(1)
}
