// Command sjgen generates synthetic TIGER-like spatial data and writes
// it as the paper's 20-byte MBR records (4 x float32 corners plus a
// uint32 ID, little-endian) to real files, for inspection or for
// feeding sjjoin.
//
// Usage:
//
//	sjgen -set NY -scale 0.01 -out /tmp/ny            # roads+hydro
//	sjgen -uniform 100000 -region 0,0,1000,1000 -out /tmp/u
//	sjgen -uniform 5000 -idbase 100000 -ndjson -out - | curl --data-binary @- \
//	    -H 'Content-Type: application/x-ndjson' \
//	    http://localhost:8470/v1/relations/roads/records
//
// Each invocation writes <out>.roads.bin and <out>.hydro.bin (or
// <out>.bin for -uniform) plus a small <out>.meta text file describing
// the universe, counts, and seed. With -ndjson the records are written
// as <out>.ndjson files instead — one JSON object per line, the bulk
// wire format of the serving layer's append endpoint — and "-out -"
// streams a single set to stdout for piping straight into an ingest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"unijoin"
	"unijoin/client"
	"unijoin/internal/datagen"
	"unijoin/internal/geom"
	"unijoin/internal/tiger"
)

func main() {
	var (
		set     = flag.String("set", "NY", "data set name (NJ NY DISK1 DISK4-6 DISK1-3 DISK1-6)")
		scale   = flag.Float64("scale", 0.01, "scale relative to Table 2 sizes")
		seed    = flag.Int64("seed", 1997, "generation seed")
		out     = flag.String("out", "dataset", "output path prefix")
		uniform = flag.Int("uniform", 0, "generate N uniform rectangles instead of a TIGER-like set")
		region  = flag.String("region", "0,0,1000,1000", "universe for -uniform: xlo,ylo,xhi,yhi")
		maxExt  = flag.Float64("maxext", 20, "max rectangle extent for -uniform")
		ndjson  = flag.Bool("ndjson", false, "write NDJSON append bodies (the serving layer's bulk wire format) instead of binary records")
		idBase  = flag.Int("idbase", 0, "first record ID (offset IDs when generating an append batch for a relation that already holds records)")
	)
	flag.Parse()

	write := writeRecords
	ext := ".bin"
	if *ndjson {
		write = writeNDJSON
		ext = ".ndjson"
	}

	if *uniform > 0 {
		r, err := unijoin.ParseRect(*region)
		if err != nil {
			fail(err)
		}
		recs := datagen.Uniform(*seed, *uniform, r, *maxExt)
		offsetIDs(recs, *idBase)
		if *ndjson && *out == "-" {
			if err := encodeNDJSON(os.Stdout, recs); err != nil {
				fail(err)
			}
			return
		}
		if err := write(*out+ext, recs); err != nil {
			fail(err)
		}
		if err := writeMeta(*out+".meta", fmt.Sprintf(
			"kind: uniform\ncount: %d\nregion: %v\nseed: %d\nmaxext: %g\n",
			len(recs), r, *seed, *maxExt)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d records to %s%s\n", len(recs), *out, ext)
		return
	}

	spec, err := tiger.SpecByName(*set)
	if err != nil {
		fail(err)
	}
	cfg := tiger.Config{Scale: *scale, Seed: *seed, Clusters: 40}
	roads, hydro := cfg.Generate(spec)
	offsetIDs(roads, *idBase)
	offsetIDs(hydro, *idBase)
	if err := write(*out+".roads"+ext, roads); err != nil {
		fail(err)
	}
	if err := write(*out+".hydro"+ext, hydro); err != nil {
		fail(err)
	}
	if err := writeMeta(*out+".meta", fmt.Sprintf(
		"kind: tiger\nset: %s\nscale: %g\nseed: %d\nregion: %v\nroads: %d\nhydro: %d\n",
		spec.Name, *scale, *seed, spec.Region, len(roads), len(hydro))); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d roads and %d hydro records to %s.{roads,hydro}%s\n",
		len(roads), len(hydro), *out, ext)
}

// offsetIDs shifts generated IDs by base so an append batch cannot
// collide with a relation's existing dense 0..n-1 IDs.
func offsetIDs(recs []geom.Record, base int) {
	if base == 0 {
		return
	}
	for i := range recs {
		recs[i].ID += uint32(base)
	}
}

// writeNDJSON writes records in the append endpoint's bulk wire
// format: one client.RecordIn JSON object per line, ready to POST to
// /v1/relations/{name}/records with an NDJSON content type.
func writeNDJSON(path string, recs []geom.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := encodeNDJSON(f, recs); err != nil {
		return err
	}
	return f.Close()
}

// encodeNDJSON streams records as NDJSON append lines.
func encodeNDJSON(w io.Writer, recs []geom.Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, r := range recs {
		in := client.RecordIn{ID: r.ID, Rect: client.Rect{
			XLo: float64(r.Rect.XLo), YLo: float64(r.Rect.YLo),
			XHi: float64(r.Rect.XHi), YHi: float64(r.Rect.YHi),
		}}
		if err := enc.Encode(in); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecords(path string, recs []geom.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 0, 1<<16)
	var rec [geom.RecordSize]byte
	for _, r := range recs {
		geom.EncodeRecord(rec[:], r)
		buf = append(buf, rec[:]...)
		if len(buf) >= 1<<16-geom.RecordSize {
			if _, err := f.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return f.Close()
}

func writeMeta(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjgen:", err)
	os.Exit(1)
}
