// Command sjgen generates synthetic TIGER-like spatial data and writes
// it as the paper's 20-byte MBR records (4 x float32 corners plus a
// uint32 ID, little-endian) to real files, for inspection or for
// feeding sjjoin.
//
// Usage:
//
//	sjgen -set NY -scale 0.01 -out /tmp/ny            # roads+hydro
//	sjgen -uniform 100000 -region 0,0,1000,1000 -out /tmp/u
//
// Each invocation writes <out>.roads.bin and <out>.hydro.bin (or
// <out>.bin for -uniform) plus a small <out>.meta text file describing
// the universe, counts, and seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"unijoin"
	"unijoin/internal/datagen"
	"unijoin/internal/geom"
	"unijoin/internal/tiger"
)

func main() {
	var (
		set     = flag.String("set", "NY", "data set name (NJ NY DISK1 DISK4-6 DISK1-3 DISK1-6)")
		scale   = flag.Float64("scale", 0.01, "scale relative to Table 2 sizes")
		seed    = flag.Int64("seed", 1997, "generation seed")
		out     = flag.String("out", "dataset", "output path prefix")
		uniform = flag.Int("uniform", 0, "generate N uniform rectangles instead of a TIGER-like set")
		region  = flag.String("region", "0,0,1000,1000", "universe for -uniform: xlo,ylo,xhi,yhi")
		maxExt  = flag.Float64("maxext", 20, "max rectangle extent for -uniform")
	)
	flag.Parse()

	if *uniform > 0 {
		r, err := unijoin.ParseRect(*region)
		if err != nil {
			fail(err)
		}
		recs := datagen.Uniform(*seed, *uniform, r, *maxExt)
		if err := writeRecords(*out+".bin", recs); err != nil {
			fail(err)
		}
		if err := writeMeta(*out+".meta", fmt.Sprintf(
			"kind: uniform\ncount: %d\nregion: %v\nseed: %d\nmaxext: %g\n",
			len(recs), r, *seed, *maxExt)); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d records to %s.bin\n", len(recs), *out)
		return
	}

	spec, err := tiger.SpecByName(*set)
	if err != nil {
		fail(err)
	}
	cfg := tiger.Config{Scale: *scale, Seed: *seed, Clusters: 40}
	roads, hydro := cfg.Generate(spec)
	if err := writeRecords(*out+".roads.bin", roads); err != nil {
		fail(err)
	}
	if err := writeRecords(*out+".hydro.bin", hydro); err != nil {
		fail(err)
	}
	if err := writeMeta(*out+".meta", fmt.Sprintf(
		"kind: tiger\nset: %s\nscale: %g\nseed: %d\nregion: %v\nroads: %d\nhydro: %d\n",
		spec.Name, *scale, *seed, spec.Region, len(roads), len(hydro))); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d roads and %d hydro records to %s.{roads,hydro}.bin\n",
		len(roads), len(hydro), *out)
}

func writeRecords(path string, recs []geom.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 0, 1<<16)
	var rec [geom.RecordSize]byte
	for _, r := range recs {
		geom.EncodeRecord(rec[:], r)
		buf = append(buf, rec[:]...)
		if len(buf) >= 1<<16-geom.RecordSize {
			if _, err := f.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	return f.Close()
}

func writeMeta(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjgen:", err)
	os.Exit(1)
}
