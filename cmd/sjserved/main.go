// Command sjserved is the long-lived spatial-join query service: it
// loads named relations into an in-memory catalog once — from sjgen
// record files or generated synthetically at startup — keeps their
// R-trees resident, and serves join and window queries over HTTP
// until told to stop.
//
// Usage:
//
//	sjserved [-addr :8470] [-timeout 30s] [-stripe lo:hi]
//	         [-load name=path.bin]... [-uniform name=N]... [-tiger SET[:scale]]...
//	         [-index all|none|name,name...] [-region x1,y1,x2,y2] [-seed n]
//
// Relation sources (repeatable, mixable):
//
//	-load roads=/data/ny.roads.bin   a 20-byte-record file written by sjgen
//	-uniform a=100000                N uniform rectangles over -region
//	-tiger NY:0.01                   the synthetic TIGER-like set, loaded
//	                                 as NY.roads and NY.hydro
//
// Endpoints: POST /v1/join, POST /v1/window, GET /v1/relations,
// GET /v1/stats, GET /v1/healthz. Join and window responses stream
// NDJSON; see the client package for the wire types.
//
// With -stripe lo:hi the process serves one shard of a fleet: each
// relation keeps only the records whose x-interval overlaps [lo, hi)
// (either side may be empty for the unbounded outer shards), and
// every join pair and window record is filtered by the shard
// ownership rules of internal/shard, so a cmd/sjrouter summing the
// fleet's responses returns exactly the single-process answer.
// Synthetic sources (-uniform, -tiger) generate the full dataset
// deterministically from -seed before slicing, so a fleet started
// with identical generation flags and distinct stripes shards one
// consistent dataset.
//
// Every request runs under a context canceled by client disconnect
// and bounded by -timeout (a request's own timeout_ms may shorten
// it). SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
// get 10 seconds to finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"unijoin"
	"unijoin/internal/datagen"
	"unijoin/internal/httpapi"
	"unijoin/internal/server"
	"unijoin/internal/shard"
	"unijoin/internal/tiger"
)

// shutdownGrace is how long in-flight requests get after SIGTERM.
const shutdownGrace = 10 * time.Second

// repeatable collects the values of a repeatable flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", ":8470", "listen address")
		timeout   = flag.Duration("timeout", 30*time.Second, "server-side ceiling per join/window request (0 = none)")
		index     = flag.String("index", "all", "which relations to index: all, none, or name,name,...")
		region    = flag.String("region", "0,0,1000,1000", "universe for -uniform relations: x1,y1,x2,y2")
		maxExt    = flag.Float64("maxext", 20, "max rectangle extent for -uniform relations")
		seed      = flag.Int64("seed", 1997, "generation seed for synthetic relations")
		stripeStr = flag.String("stripe", "", "serve one stripe shard lo:hi of the data (either side may be empty; see internal/shard)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
		traces    = flag.Int("traces", 0, "recent request traces to keep for GET /v1/traces (0 = default capacity)")
		slowQuery = flag.Duration("slowquery", 0, "log a warning with the span breakdown for requests at least this slow (0 = off)")
		loads     repeatable
		unis      repeatable
		tigers    repeatable
	)
	flag.Var(&loads, "load", "load name=path.bin (repeatable)")
	flag.Var(&unis, "uniform", "generate name=N uniform rectangles (repeatable)")
	flag.Var(&tigers, "tiger", "generate a TIGER-like set SET[:scale] as SET.roads + SET.hydro (repeatable)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if len(loads)+len(unis)+len(tigers) == 0 {
		fail(errors.New("no relations: give at least one -load, -uniform, or -tiger"))
	}
	var stripe *shard.Interval
	if *stripeStr != "" {
		iv, err := shard.ParseInterval(*stripeStr)
		if err != nil {
			fail(err)
		}
		stripe = &iv
	}

	cat, err := buildCatalog(log, loads, unis, tigers, *region, *maxExt, *seed, *index, stripe)
	if err != nil {
		fail(err)
	}

	// The workload histogram's bounds come from -region, so every shard
	// of a fleet started with the same -region (the only sane way to
	// run one) keeps bucket-compatible histograms a router can sum.
	universe, err := unijoin.ParseRect(*region)
	if err != nil {
		fail(err)
	}
	srv := server.New(server.Config{
		Catalog: cat, Timeout: *timeout, Logger: log, Stripe: stripe,
		Traces: *traces, SlowQuery: *slowQuery,
		WorkloadLo: float64(universe.XLo), WorkloadHi: float64(universe.XHi),
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// The profiler rides its own listener, so it is never exposed
		// on the query port; a failure to bind is fatal because asking
		// for profiling and silently not getting it is worse. The
		// server handle is kept so the graceful drain closes this
		// listener too instead of leaking it until process exit.
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: httpapi.PprofMux()}
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail(err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "relations", cat.Len(), "timeout", timeout.String())

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", shutdownGrace.String())
	if pprofSrv != nil {
		// Profiling sessions have no drain semantics worth waiting on;
		// close the side listener immediately.
		pprofSrv.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// A request outliving the grace period is routine load
		// shedding, not a crash: cut the stragglers and exit 0 as
		// documented so orchestrators treat the stop as clean.
		log.Warn("shutdown grace expired, closing remaining connections", "err", err)
		httpSrv.Close()
	}
	log.Info("bye")
}

// buildCatalog loads every requested relation and builds the
// requested indexes, logging each load. With a stripe, each relation
// keeps only its shard slice — the records whose x-interval overlaps
// the stripe — after the full set is read or generated, so synthetic
// generation stays deterministic across a fleet.
func buildCatalog(log *slog.Logger, loads, unis, tigers repeatable,
	region string, maxExt float64, seed int64, index string, stripe *shard.Interval) (*unijoin.Catalog, error) {
	u, err := unijoin.ParseRect(region)
	if err != nil {
		return nil, err
	}
	// explicitIndex holds the -index name list (nil for all/none);
	// after loading, every listed name must exist — a typo silently
	// leaving a relation unindexed is exactly the startup error a
	// long-lived service wants to fail loudly on.
	var explicitIndex map[string]bool
	switch index {
	case "all", "none", "":
	default:
		explicitIndex = make(map[string]bool)
		for _, n := range strings.Split(index, ",") {
			explicitIndex[strings.TrimSpace(n)] = false
		}
	}
	indexed := func(name string) bool {
		switch {
		case index == "all":
			return true
		case explicitIndex != nil:
			if _, ok := explicitIndex[name]; ok {
				explicitIndex[name] = true
				return true
			}
			return false
		default: // "none" or empty
			return false
		}
	}

	cat := unijoin.NewCatalog()
	add := func(name string, recs []unijoin.Record) error {
		total := len(recs)
		if stripe != nil {
			recs = stripe.Slice(recs)
		}
		rel, err := cat.Load(name, recs, indexed(name))
		if err != nil {
			return err
		}
		pv := rel.Pin()
		if stripe != nil {
			log.Info("loaded relation shard", "name", name, "stripe", stripe.String(),
				"records", pv.Len(), "of", total, "indexed", pv.Indexed())
			return nil
		}
		log.Info("loaded relation", "name", name, "records", pv.Len(),
			"indexed", pv.Indexed(), "data_bytes", pv.DataBytes(), "index_bytes", pv.IndexBytes())
		return nil
	}

	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load %q: want name=path", spec)
		}
		recs, err := unijoin.ReadRecordFile(path)
		if err != nil {
			return nil, err
		}
		if err := add(name, recs); err != nil {
			return nil, err
		}
	}
	for _, spec := range unis {
		name, countStr, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -uniform %q: want name=N", spec)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -uniform count %q", countStr)
		}
		// Distinct per-relation seeds so two -uniform relations differ.
		if err := add(name, datagen.Uniform(seed+int64(len(cat.Names())), n, u, maxExt)); err != nil {
			return nil, err
		}
	}
	for _, spec := range tigers {
		setName, scaleStr, hasScale := strings.Cut(spec, ":")
		scale := 0.01
		if hasScale {
			s, err := strconv.ParseFloat(scaleStr, 64)
			if err != nil || s <= 0 || s > 1 {
				return nil, fmt.Errorf("bad -tiger scale %q", scaleStr)
			}
			scale = s
		}
		ts, err := tiger.SpecByName(setName)
		if err != nil {
			return nil, err
		}
		cfg := tiger.Config{Scale: scale, Seed: seed, Clusters: 40}
		roads, hydro := cfg.Generate(ts)
		if err := add(ts.Name+".roads", roads); err != nil {
			return nil, err
		}
		if err := add(ts.Name+".hydro", hydro); err != nil {
			return nil, err
		}
	}
	for name, used := range explicitIndex {
		if !used {
			return nil, fmt.Errorf("-index names unknown relation %q (have: %s)",
				name, strings.Join(cat.Names(), ", "))
		}
	}
	return cat, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjserved:", err)
	os.Exit(1)
}
