package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"unijoin/client"
)

// runTraces serves the traces subcommand: a table of recent traces,
// or one trace's span tree when -id names it.
func runTraces(ctx context.Context, cl *client.Client, args []string) {
	fs := flag.NewFlagSet("traces", flag.ExitOnError)
	var (
		n  = fs.Int("n", 20, "how many recent traces to list")
		id = fs.String("id", "", "print this trace's full span tree instead of the listing")
	)
	fs.Parse(args)
	if *id != "" {
		t, err := cl.TraceByID(ctx, *id)
		if err != nil {
			fatal(err)
		}
		printTrace(t)
		return
	}
	if *n <= 0 {
		fatal(errors.New("traces: -n must be positive"))
	}
	sums, err := cl.Traces(ctx, *n)
	if err != nil {
		fatal(err)
	}
	if len(sums) == 0 {
		fmt.Println("no traces recorded")
		return
	}
	fmt.Printf("%-20s %-8s %-16s %10s %6s  %s\n", "ID", "KIND", "NAME", "MS", "SPANS", "START")
	for _, s := range sums {
		fmt.Printf("%-20s %-8s %-16s %10.3f %6d  %s\n",
			s.ID, s.Kind, s.Name, s.DurationMillis, s.Spans, s.Start)
	}
}

// printTrace renders one span tree, depth as indentation, with the
// offset-from-root and duration columns right-aligned so a scan down
// the page reads as a timeline.
func printTrace(t *client.TraceDetail) {
	fmt.Printf("trace %s  kind=%s  start=%s  %.3fms", t.ID, t.Kind, t.Start, t.DurationMillis)
	if t.ParentSpan != "" {
		fmt.Printf("  parent-span=%s", t.ParentSpan)
	}
	fmt.Println()
	printSpan(t.Root, 0)
}

func printSpan(s *client.Span, depth int) {
	attrs := ""
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+s.Attrs[k])
		}
		attrs = "  {" + strings.Join(parts, " ") + "}"
	}
	fmt.Fprintf(os.Stdout, "%10.3f %10.3fms  %s%s [%s]%s\n",
		s.StartMillis, s.DurationMillis,
		strings.Repeat("  ", depth), s.Name, s.ID, attrs)
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}
