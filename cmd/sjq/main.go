// Command sjq issues join and window queries against a running
// sjserved or sjrouter from the command line, over either stream
// transport — the NDJSON default or the negotiated internal/wire
// binary framing. It exists so shell-driven checks (CI smoke jobs,
// operators poking a fleet) can exercise the binary path, which curl
// cannot decode.
//
// Usage:
//
//	sjq [-addr url] [-transport ndjson|binary] [-timeout d] join \
//	    -left L -right R [-alg A] [-window x1,y1,x2,y2] [-count] [-trace]
//	sjq [global flags] window -relation R -window x1,y1,x2,y2 [-count]
//	sjq [global flags] stats
//	sjq [global flags] traces [-n 20] [-id request-id]
//
// traces lists the service's recent request traces (GET /v1/traces)
// as a table, or with -id pretty-prints one trace's span tree (GET
// /v1/traces/{id}) with indentation showing the hierarchy and
// millisecond-aligned offset/duration columns — against a router the
// tree shows every scatter leg with the shard's own phases grafted
// underneath.
//
// join and window consume the full result stream, counting streamed
// pairs or records, and print one JSON object to stdout:
//
//	{"streamed": 12345, "summary": {...}}
//
// so jq-based assertions can compare counts across transports and
// topologies. stats prints the GET /v1/stats body verbatim. Typed
// service errors exit 1 with the error on stderr; a cancellation or
// timeout exits 2.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unijoin"
	"unijoin/client"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8470", "base URL of the sjserved or sjrouter to query")
		transport = flag.String("transport", "ndjson", "stream encoding to request: ndjson or binary")
		timeout   = flag.Duration("timeout", time.Minute, "abort the query after this long (0 = no limit)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sjq [flags] join|window|stats [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(1)
	}

	cl := client.New(*addr, nil)
	switch *transport {
	case "ndjson":
	case "binary":
		cl.PreferBinary = true
	default:
		fatal(fmt.Errorf("unknown -transport %q (want ndjson or binary)", *transport))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch cmd, args := flag.Arg(0), flag.Args()[1:]; cmd {
	case "join":
		runJoin(ctx, cl, args)
	case "window":
		runWindow(ctx, cl, args)
	case "stats":
		runStats(ctx, cl)
	case "traces":
		runTraces(ctx, cl, args)
	default:
		fatal(fmt.Errorf("unknown command %q (want join, window, stats, or traces)", cmd))
	}
}

// parseWindow converts the -window flag into the API's rectangle.
func parseWindow(s string) (*client.Rect, error) {
	if s == "" {
		return nil, nil
	}
	r, err := unijoin.ParseRect(s)
	if err != nil {
		return nil, err
	}
	return &client.Rect{
		XLo: float64(r.XLo), YLo: float64(r.YLo),
		XHi: float64(r.XHi), YHi: float64(r.YHi),
	}, nil
}

func runJoin(ctx context.Context, cl *client.Client, args []string) {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	var (
		left        = fs.String("left", "", "left relation (required)")
		right       = fs.String("right", "", "right relation (required)")
		alg         = fs.String("alg", "", "join algorithm (default: the server's)")
		window      = fs.String("window", "", "restrict the join to this rectangle: x1,y1,x2,y2")
		count       = fs.Bool("count", false, "count only; stream no pairs")
		trace       = fs.Bool("trace", false, "include the per-phase breakdown in the summary")
		parallelism = fs.Int("parallelism", 0, "worker count for the parallel algorithm")
	)
	fs.Parse(args)
	if *left == "" || *right == "" {
		fatal(errors.New("join: -left and -right are required"))
	}
	win, err := parseWindow(*window)
	if err != nil {
		fatal(err)
	}
	req := client.JoinRequest{
		Left: *left, Right: *right, Algorithm: *alg, Window: win,
		CountOnly: *count, Trace: *trace, Parallelism: *parallelism,
	}
	var streamed int64
	sum, err := cl.Join(ctx, req, func(uint32, uint32) { streamed++ })
	if err != nil {
		fatal(err)
	}
	emit(streamed, sum)
}

func runWindow(ctx context.Context, cl *client.Client, args []string) {
	fs := flag.NewFlagSet("window", flag.ExitOnError)
	var (
		relation = fs.String("relation", "", "relation to query (required)")
		window   = fs.String("window", "", "query rectangle: x1,y1,x2,y2 (required)")
		count    = fs.Bool("count", false, "count only; stream no records")
	)
	fs.Parse(args)
	if *relation == "" {
		fatal(errors.New("window: -relation is required"))
	}
	win, err := parseWindow(*window)
	if err != nil {
		fatal(err)
	}
	if win == nil {
		fatal(errors.New("window: -window is required"))
	}
	req := client.WindowRequest{Relation: *relation, Window: win, CountOnly: *count}
	var streamed int64
	sum, err := cl.Window(ctx, req, func(client.RecordOut) { streamed++ })
	if err != nil {
		fatal(err)
	}
	emit(streamed, sum)
}

func runStats(ctx context.Context, cl *client.Client) {
	stats, err := cl.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(stats); err != nil {
		fatal(err)
	}
}

// emit prints the one-object result line: the streamed entry count
// and the server's summary.
func emit(streamed int64, summary any) {
	out := struct {
		Streamed int64 `json:"streamed"`
		Summary  any   `json:"summary"`
	}{streamed, summary}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// fatal distinguishes cancellation (exit 2) from real failures.
func fatal(err error) {
	if errors.Is(err, client.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "sjq: interrupted: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "sjq: %v\n", err)
	os.Exit(1)
}
