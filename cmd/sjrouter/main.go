// Command sjrouter serves spatial-join queries over a fleet of
// sjserved stripe shards: it speaks exactly the sjserved HTTP API, so
// clients (and load balancers) cannot tell a sharded deployment from
// a single process, while every join and window query fans out to all
// shards and the merged response is exactly the single-process answer
// — each shard filters its output by its -stripe ownership interval,
// so counts sum and streams concatenate with no duplicates.
//
// Usage:
//
//	sjrouter [-addr :8480] [-timeout 30s] [-wait 30s]
//	         -shard http://host1:8470 -shard http://host2:8470 ...
//
// A typical 3-shard fleet over one deterministic synthetic dataset:
//
//	sjserved -addr :8471 -uniform a=100000 -uniform b=100000 -stripe :333   &
//	sjserved -addr :8472 -uniform a=100000 -uniform b=100000 -stripe 333:666 &
//	sjserved -addr :8473 -uniform a=100000 -uniform b=100000 -stripe 666:   &
//	sjrouter -addr :8480 -shard http://localhost:8471 \
//	         -shard http://localhost:8472 -shard http://localhost:8473
//
// At startup the router health-checks the fleet (retrying until -wait
// expires) and verifies the shards' stripes tile the x-axis — a
// misconfigured fleet that would drop or double-count pairs is
// refused before it serves a single query. SIGINT/SIGTERM trigger a
// graceful shutdown: in-flight scatter-gather streams get 10 seconds
// to drain, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unijoin/internal/httpapi"
	"unijoin/internal/shard"
)

// shutdownGrace is how long in-flight requests get after SIGTERM.
const shutdownGrace = 10 * time.Second

// repeatable collects the values of a repeatable flag.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var (
		addr      = flag.String("addr", ":8480", "listen address")
		timeout   = flag.Duration("timeout", 30*time.Second, "router-side ceiling per join/window request (0 = none)")
		wait      = flag.Duration("wait", 30*time.Second, "how long to retry the startup fleet check before giving up")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6061; empty = off)")
		traces    = flag.Int("traces", 0, "recent request traces to keep for GET /v1/traces (0 = default capacity)")
		slowQuery = flag.Duration("slowquery", 0, "log a warning with the scatter breakdown for requests at least this slow (0 = off)")
		shards    repeatable
	)
	flag.Var(&shards, "shard", "base URL of one sjserved shard (repeatable)")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if len(shards) == 0 {
		fail(errors.New("no shards: give at least one -shard URL"))
	}
	router, err := shard.NewRouter(shards, nil)
	if err != nil {
		fail(err)
	}
	if err := awaitFleet(log, router, *wait); err != nil {
		fail(err)
	}

	svc := shard.NewService(shard.ServiceConfig{
		Router: router, Timeout: *timeout, Logger: log,
		Traces: *traces, SlowQuery: *slowQuery,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		// Same side-listener rule as sjserved: profiling never rides
		// the query port, a bind failure is fatal, and the handle is
		// kept so the graceful drain closes this listener too.
		pprofSrv = &http.Server{Addr: *pprofAddr, Handler: httpapi.PprofMux()}
		go func() {
			log.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fail(err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("routing", "addr", *addr, "shards", router.Shards(), "timeout", timeout.String())

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	log.Info("shutting down", "grace", shutdownGrace.String())
	if pprofSrv != nil {
		// Profiling sessions have no drain semantics worth waiting on;
		// close the side listener immediately.
		pprofSrv.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// In-flight streams outliving the grace period are load
		// shedding, not a crash: cut them and exit 0 as documented.
		log.Warn("shutdown grace expired, closing remaining connections", "err", err)
		httpSrv.Close()
	}
	log.Info("bye")
}

// awaitFleet retries Router.Verify — every shard healthy, stripes
// tiling the x-axis — until it passes or the wait budget expires, so
// a fleet started in parallel with the router converges instead of
// racing it.
func awaitFleet(log *slog.Logger, router *shard.Router, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for attempt := 1; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		stats, err := router.Verify(ctx)
		cancel()
		if err == nil {
			for i, s := range stats {
				stripe := "(all)"
				if s.Stripe != nil {
					stripe = shard.FromStripe(s.Stripe).String()
				}
				log.Info("shard ready", "shard", i, "url", router.Endpoints()[i],
					"stripe", stripe, "relations", s.Relations)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet not ready after %s: %w", wait, err)
		}
		log.Info("waiting for fleet", "attempt", attempt, "err", err.Error())
		time.Sleep(min(500*time.Millisecond, wait))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sjrouter:", err)
	os.Exit(1)
}
