package unijoin

import (
	"unijoin/internal/core"
)

// Typed sentinel errors. Every error returned by the Query API (and
// the deprecated Join/ParallelJoin wrappers) can be classified with
// errors.Is against these values.
var (
	// ErrNeedsIndex reports that the selected algorithm requires
	// R-tree indexes its inputs do not have (ST and BFRJ need both
	// sides indexed; call Relation.BuildIndex first, or use AlgPQ,
	// which accepts any mix of indexed and non-indexed inputs).
	ErrNeedsIndex = core.ErrNeedsIndex

	// ErrNilRelation reports that a nil *Relation was passed to a
	// query or join.
	ErrNilRelation = core.ErrNilRelation

	// ErrCanceled reports that the context governing Query.Run was
	// canceled before the join finished. It wraps context.Canceled, so
	// both errors.Is(err, ErrCanceled) and errors.Is(err,
	// context.Canceled) match; when a deadline caused the cancellation
	// the error also matches context.DeadlineExceeded.
	ErrCanceled = core.ErrCanceled

	// ErrSweepOverflow reports that SSSJ's in-memory sweep structures
	// outgrew the memory budget (adversarial inputs only; see
	// core.SSSJPartitioned for the paper's fallback).
	ErrSweepOverflow = core.ErrSweepOverflow
)
