// Package client is the Go client for sjserved, the spatial-join
// query service, and the home of the wire types its HTTP API speaks
// (internal/server marshals exactly these structs, so the two sides
// cannot drift).
//
// The service exposes six endpoints:
//
//	GET  /v1/healthz                        liveness probe
//	GET  /v1/relations                      the in-memory relation catalog
//	GET  /v1/stats                          uptime and per-request counters
//	POST /v1/join                           spatial join of two cataloged relations
//	POST /v1/window                         window (range) query over one relation
//	POST /v1/relations/{relation}/records   append records to a relation
//
// Join and window responses stream as NDJSON (one JSON object per
// line): zero or more batch lines carrying result pairs or records,
// then exactly one terminal line carrying either the summary or an
// error. Streaming starts as soon as the join produces output, so a
// client can consume results long before the query finishes.
//
// sjrouter, the scatter-gather front for a fleet of sjserved stripe
// shards, speaks the same API — the shard-aware fields (Stripe,
// Shards) are the only way to tell the two apart. Non-2xx responses
// and terminal error lines surface as *APIError values matching this
// package's sentinel errors under errors.Is.
package client

import "fmt"

// Rect is an axis-parallel rectangle in request/response bodies,
// mirroring unijoin.Rect.
type Rect struct {
	XLo float64 `json:"xlo"`
	YLo float64 `json:"ylo"`
	XHi float64 `json:"xhi"`
	YHi float64 `json:"yhi"`
}

// JoinRequest asks for a spatial join of two cataloged relations.
type JoinRequest struct {
	// Left and Right name the relations to join.
	Left  string `json:"left"`
	Right string `json:"right"`
	// Algorithm is the join strategy: PQ (default), SSSJ, PBSM, ST,
	// auto, BFRJ, or parallel (case-insensitive).
	Algorithm string `json:"algorithm,omitempty"`
	// Window restricts the join to pairs of records both intersecting
	// this rectangle.
	Window *Rect `json:"window,omitempty"`
	// Parallelism is the worker count for the parallel algorithm
	// (0 = the server's GOMAXPROCS; the server clamps large values).
	Parallelism int `json:"parallelism,omitempty"`
	// CountOnly skips pair streaming and materialization entirely;
	// the response is a single summary line (the cheapest mode).
	CountOnly bool `json:"count_only,omitempty"`
	// TimeoutMillis bounds this request server-side; the server's own
	// per-request timeout still applies as a ceiling.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Trace asks the server to include a per-phase wall-clock
	// breakdown (partition/sweep/stream) in the summary line.
	Trace bool `json:"trace,omitempty"`
}

// PhaseTrace is the per-query phase breakdown returned when a join
// request sets Trace. Partition covers input preparation (external
// sorts, distribution passes); Sweep covers the join kernel or index
// traversal; Stream covers writing result batches to the response.
// Pure-traversal algorithms (ST, BFRJ) have no partition phase, so
// their PartitionMillis is zero. A router reports the slowest shard
// per phase, matching how it reports ElapsedMillis.
type PhaseTrace struct {
	PartitionMillis float64 `json:"partition_ms"`
	SweepMillis     float64 `json:"sweep_ms"`
	StreamMillis    float64 `json:"stream_ms"`
}

// JoinSummary is the terminal line of a successful join response.
type JoinSummary struct {
	Left         string `json:"left"`
	Right        string `json:"right"`
	Algorithm    string `json:"algorithm"`
	Pairs        int64  `json:"pairs"`
	LeftRecords  int64  `json:"left_records"`
	RightRecords int64  `json:"right_records"`
	// ElapsedMillis is the server-side wall-clock time of the join.
	ElapsedMillis float64 `json:"elapsed_ms"`
	// Trace is the per-phase breakdown, present only when the request
	// set Trace.
	Trace *PhaseTrace `json:"trace,omitempty"`
	// Spans is the request's span tree, present only when the request
	// set Trace: a direct server returns its server.join tree; a
	// router returns its router.join root with one scatter child per
	// shard, each carrying that shard's full tree. The same tree is
	// retrievable later from GET /v1/traces/{request-id}.
	Spans *Span `json:"spans,omitempty"`
}

// Span is one node of a trace tree (GET /v1/traces/{id}, and the
// summary's Spans field when a request asked for a trace).
type Span struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// StartMillis is the span's offset from its tree's root start — a
	// shard's subtree grafted under a router's scatter span is rebased
	// onto the router's clock, so offsets nest consistently within one
	// tree even across processes.
	StartMillis    float64           `json:"start_ms"`
	DurationMillis float64           `json:"duration_ms"`
	Attrs          map[string]string `json:"attrs,omitempty"`
	Children       []*Span           `json:"children,omitempty"`
}

// TraceSummary is one row of GET /v1/traces: enough to pick a trace
// from the recent window without fetching every tree.
type TraceSummary struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Name is the root span's name (router.join, server.window, ...).
	Name string `json:"name"`
	// Start is the root span's wall-clock start, RFC 3339 with
	// nanoseconds.
	Start          string            `json:"start"`
	DurationMillis float64           `json:"duration_ms"`
	Spans          int               `json:"spans"`
	Attrs          map[string]string `json:"attrs,omitempty"`
}

// TraceDetail is the full tree behind GET /v1/traces/{id}.
type TraceDetail struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// ParentSpan links a shard's trace to the router scatter span that
	// caused it (the X-Parent-Span the router sent); absent for
	// requests that arrived directly.
	ParentSpan     string  `json:"parent_span,omitempty"`
	Start          string  `json:"start"`
	DurationMillis float64 `json:"duration_ms"`
	Root           *Span   `json:"root"`
}

// WindowRequest asks for the records of one relation intersecting a
// rectangle. Window is required — the server rejects a request
// without one rather than guessing a default.
type WindowRequest struct {
	Relation string `json:"relation"`
	Window   *Rect  `json:"window"`
	// CountOnly skips record streaming; the response is a single
	// summary line.
	CountOnly bool `json:"count_only,omitempty"`
	// TimeoutMillis bounds this request server-side.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// WindowSummary is the terminal line of a successful window response.
type WindowSummary struct {
	Relation      string  `json:"relation"`
	Records       int64   `json:"records"`
	Indexed       bool    `json:"indexed"`
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// RecordOut is one spatial record in a window response.
type RecordOut struct {
	ID   uint32 `json:"id"`
	Rect Rect   `json:"rect"`
}

// RecordIn is one spatial record in an append request
// (POST /v1/relations/{relation}/records). The same shape works as a
// single JSON object, an element of a JSON array, or one NDJSON line
// — the bulk wire format cmd/sjgen emits with -ndjson.
type RecordIn struct {
	ID   uint32 `json:"id"`
	Rect Rect   `json:"rect"`
}

// AppendSummary is the response to an append: how many records this
// process (or fleet) accepted and the relation's state afterwards.
// Queries started after a successful append observe every appended
// record; queries already running when it landed observe none of them
// (each query pins the relation's epoch when it starts).
type AppendSummary struct {
	Relation string `json:"relation"`
	// Appended counts the records accepted. A stripe shard accepts
	// only records overlapping its stripe; a router reports the input
	// records placed (each lands on every shard whose stripe it
	// overlaps, mirroring how -stripe slices at load).
	Appended int64 `json:"appended"`
	// Records is the relation's total after the append (summed across
	// shards by a router, counting boundary-crossing records once per
	// holding shard, as GET /v1/relations does).
	Records int64 `json:"records"`
	// Epoch is the relation's version number after the append (the
	// maximum across shards for a router); it increases with every
	// append and compaction.
	Epoch int64 `json:"epoch"`
	// DeltaRecords is how many records sit in the relation's delta log
	// past its packed base (summed across shards) — compaction resets
	// it to zero.
	DeltaRecords int64 `json:"delta_records"`
	// Compacted reports whether this append tripped the relation's
	// compaction threshold (on any shard, for a router).
	Compacted bool `json:"compacted,omitempty"`
	// Shards is set by a router: how many shards the append fanned out
	// to.
	Shards int `json:"shards,omitempty"`
}

// JoinLine is one NDJSON line of a join response: exactly one field
// is set — Pairs on batch lines, Summary or Error on the final line.
// Each pair is [leftID, rightID].
type JoinLine struct {
	Pairs   [][2]uint32  `json:"pairs,omitempty"`
	Summary *JoinSummary `json:"summary,omitempty"`
	Error   *APIError    `json:"error,omitempty"`
}

// WindowLine is one NDJSON line of a window response; exactly one
// field is set, as in JoinLine.
type WindowLine struct {
	Records []RecordOut    `json:"records,omitempty"`
	Summary *WindowSummary `json:"summary,omitempty"`
	Error   *APIError      `json:"error,omitempty"`
}

// Stripe is the half-open x-interval [Lo, Hi) a shard serves. A nil
// bound means unbounded on that side (the outer shards of a plan), so
// the ±Inf sentinels survive JSON, which cannot carry infinities.
type Stripe struct {
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`
}

// RelationInfo describes one cataloged relation (GET /v1/relations).
type RelationInfo struct {
	Name       string `json:"name"`
	Records    int64  `json:"records"`
	Indexed    bool   `json:"indexed"`
	DataBytes  int64  `json:"data_bytes"`
	IndexBytes int64  `json:"index_bytes,omitempty"`
	MBR        Rect   `json:"mbr"`
	// Stripe is set when the serving process holds only a stripe
	// shard of the relation (sjserved -stripe): Records then counts
	// the loaded slice, not the full relation.
	Stripe *Stripe `json:"stripe,omitempty"`
	// Shards is set by a router: how many shards reported this
	// relation (Records is their sum, which counts boundary-crossing
	// records once per shard that loaded them).
	Shards int `json:"shards,omitempty"`
}

// Stats is the GET /v1/stats response: uptime, the catalog summary,
// and the per-request counters the metrics middleware accumulates.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Relations     int     `json:"relations"`
	Requests      int64   `json:"requests"`
	InFlight      int64   `json:"in_flight"`
	Joins         int64   `json:"joins"`
	Windows       int64   `json:"windows"`
	// Errors counts failed requests, excluding cancellations;
	// Canceled counts timeouts and client disconnects separately.
	Errors          int64 `json:"errors"`
	Canceled        int64 `json:"canceled"`
	PairsStreamed   int64 `json:"pairs_streamed"`
	RecordsStreamed int64 `json:"records_streamed"`
	// Appends and RecordsIngested count append requests accepted and
	// records written through them; Compactions counts delta-log folds.
	Appends         int64 `json:"appends"`
	RecordsIngested int64 `json:"records_ingested"`
	Compactions     int64 `json:"compactions"`
	// DeltaRecords is the live gauge of records sitting in delta logs
	// past their relations' packed bases, summed over the catalog (and
	// over shards by a router) — the distance to the next compaction.
	DeltaRecords int64 `json:"delta_records"`
	// Stripe is set when this process serves one stripe shard of its
	// catalog (sjserved -stripe) — the shard metadata a router checks
	// to verify a fleet tiles the x-axis.
	Stripe *Stripe `json:"stripe,omitempty"`
	// Shards is set by a router: the number of downstream shard
	// processes whose counters are aggregated into this response.
	Shards int `json:"shards,omitempty"`
	// JoinLatencyEWMAMillis is the exponentially-weighted moving
	// average of join latency per algorithm, in milliseconds — the
	// steady-state estimate the auto planner and a future rebalancer
	// consume. Absent until the first join completes.
	JoinLatencyEWMAMillis map[string]float64 `json:"join_latency_ewma_ms,omitempty"`
	// ShardStats is set by a router: one entry per downstream shard,
	// combining the shard's own counters with the router's view of its
	// scatter latency and error rate.
	ShardStats []ShardStat `json:"shard_stats,omitempty"`
	// Workload is the query-workload recorder's snapshot: where query
	// windows land on the x-axis and which (relation, algorithm)
	// combinations traffic runs — the input a rolling rebalance and
	// the auto planner consume. A router sums it across shards.
	Workload *WorkloadStats `json:"workload,omitempty"`
}

// WorkloadStats is the wire form of the query-workload recorder: a
// fixed-bucket histogram of query-window x-intervals over [XLo, XHi)
// (Buckets[i] counts windows overlapping stripe i), plus query counts
// by relation and algorithm. A router sums all counts across its
// shards; every shard of one fleet records over the same range and
// bucket count, so the merge is index-wise.
type WorkloadStats struct {
	XLo     float64 `json:"xlo"`
	XHi     float64 `json:"xhi"`
	Buckets []int64 `json:"buckets"`
	// Windowed and Unwindowed split queries by whether they carried a
	// window; only windowed queries land in Buckets, so full scans
	// don't drown the locality signal.
	Windowed   int64 `json:"windowed"`
	Unwindowed int64 `json:"unwindowed"`
	// Queries maps relation → algorithm → accepted query count
	// (window queries count under algorithm "window").
	Queries map[string]map[string]int64 `json:"queries,omitempty"`
}

// ShardStat is a router's per-shard health line: the shard's
// self-reported counters plus the scatter latency the router observes
// from its side of the connection.
type ShardStat struct {
	Endpoint string  `json:"endpoint"`
	Stripe   *Stripe `json:"stripe,omitempty"`
	// Requests, InFlight, and Errors are the shard's own counters.
	Requests int64 `json:"requests"`
	InFlight int64 `json:"in_flight"`
	Errors   int64 `json:"errors"`
	// ScatterRequests and ScatterErrors count the router's calls to
	// this shard; LatencyEWMAMillis is the router-observed smoothed
	// per-call latency.
	ScatterRequests   int64   `json:"scatter_requests"`
	ScatterErrors     int64   `json:"scatter_errors"`
	LatencyEWMAMillis float64 `json:"latency_ewma_ms"`
}

// Error codes carried by APIError.Code, one per error class the
// server distinguishes.
const (
	CodeBadRequest  = "bad_request" // malformed body, unknown algorithm, bad window
	CodeNotFound    = "not_found"   // relation not in the catalog (or unknown route)
	CodeNeedsIndex  = "needs_index" // algorithm requires indexes the inputs lack
	CodeCanceled    = "canceled"    // server-side timeout or client disconnect
	CodeUnavailable = "unavailable" // a downstream shard is unreachable (router only)
	CodeInternal    = "internal"    // anything else
)

// APIError is the service's error shape, both as a non-2xx JSON body
// and as the terminal line of a stream that failed mid-flight (in
// which case Status reflects the code the server would have sent).
type APIError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("sjserved: %s (%d %s)", e.Message, e.Status, e.Code)
}
