package client

import (
	"errors"
	"net/http"
)

// Sentinel errors, one per API error class. Every *APIError the
// client returns — whether decoded from a non-2xx response body or
// from the terminal error line of a stream — matches exactly one of
// these under errors.Is, so callers branch on error classes without
// string matching:
//
//	_, err := cl.Join(ctx, req, nil)
//	switch {
//	case errors.Is(err, client.ErrNeedsIndex):   // 422: build the index or pick PQ
//	case errors.Is(err, client.ErrNotFound):     // 404: relation not in the catalog
//	case errors.Is(err, client.ErrCanceled):     // 504: timeout or disconnect
//	}
//
// The concrete *APIError (via errors.As) still carries the status,
// code, and server message.
var (
	// ErrBadRequest is the malformed-request class (HTTP 400).
	ErrBadRequest = errors.New("sjserved: bad request")
	// ErrNotFound reports a relation (or route) the server does not
	// have (HTTP 404).
	ErrNotFound = errors.New("sjserved: not found")
	// ErrNeedsIndex reports an algorithm that requires R-tree indexes
	// the inputs lack (HTTP 422).
	ErrNeedsIndex = errors.New("sjserved: needs index")
	// ErrCanceled reports a server-side timeout or client disconnect
	// (HTTP 504).
	ErrCanceled = errors.New("sjserved: canceled")
	// ErrUnavailable reports an unreachable or failing downstream
	// shard behind a router (HTTP 502).
	ErrUnavailable = errors.New("sjserved: shard unavailable")
	// ErrInternal is every other server-side failure (HTTP 5xx).
	ErrInternal = errors.New("sjserved: internal error")
)

// sentinelFor maps an error code to its sentinel.
func sentinelFor(code string) error {
	switch code {
	case CodeBadRequest:
		return ErrBadRequest
	case CodeNotFound:
		return ErrNotFound
	case CodeNeedsIndex:
		return ErrNeedsIndex
	case CodeCanceled:
		return ErrCanceled
	case CodeUnavailable:
		return ErrUnavailable
	default:
		return ErrInternal
	}
}

// Is makes errors.Is(err, client.ErrNeedsIndex) and friends match the
// APIError's class.
func (e *APIError) Is(target error) bool { return sentinelFor(e.Code) == target }

// codeForStatus maps an HTTP status to the error code the server
// would have used — the fallback classification when a non-2xx body
// is not the expected {"error": {...}} shape (a proxy's bare 404, a
// load balancer's HTML 502), so callers can still branch on typed
// errors instead of matching body text.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusUnprocessableEntity:
		return CodeNeedsIndex
	case http.StatusGatewayTimeout:
		return CodeCanceled
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
