package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// maxLineBytes bounds one NDJSON response line; batch lines are
// server-capped far below this.
const maxLineBytes = 1 << 20

// requestIDHeader mirrors the header name internal/httpapi uses; the
// client package cannot import it (the dependency points the other
// way), so the constant exists on both sides of the wire.
const requestIDHeader = "X-Request-Id"

// ridKey is the context key carrying a request's correlation ID.
type ridKey struct{}

// WithRequestID returns a context carrying a request correlation ID;
// every Client call under it sends the ID as X-Request-Id, so a query
// can be followed client → router → shard through the fleet's logs.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFrom returns the correlation ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// Client talks to one sjserved instance. The zero value is not
// usable; construct with New. Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// PreferBinary routes Join/Window streaming through the binary
	// frame transport (JoinFrames/WindowFrames), falling back to
	// NDJSON automatically against servers that don't speak it. Set it
	// before the client is shared between goroutines.
	PreferBinary bool
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8470"). httpClient may be nil for
// http.DefaultClient; cancellation and deadlines come from the
// per-call context either way.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Health checks GET /v1/healthz, returning nil when the service is up.
func (c *Client) Health(ctx context.Context) error {
	var ignored map[string]string
	return c.getJSON(ctx, "/v1/healthz", &ignored)
}

// Relations lists the server's relation catalog.
func (c *Client) Relations(ctx context.Context) ([]RelationInfo, error) {
	var out []RelationInfo
	if err := c.getJSON(ctx, "/v1/relations", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the server's request counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.getJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Join runs a spatial join on the server, streaming each result pair
// to onPair as batches arrive, and returns the summary the server
// computed. onPair may be nil (or req.CountOnly set) to skip pair
// delivery. Errors from the service are returned as *APIError, which
// matches the package's sentinel errors under errors.Is.
func (c *Client) Join(ctx context.Context, req JoinRequest, onPair func(left, right uint32)) (*JoinSummary, error) {
	var onBatch func([][2]uint32)
	if onPair != nil {
		onBatch = func(batch [][2]uint32) {
			for _, p := range batch {
				onPair(p[0], p[1])
			}
		}
	}
	return c.JoinBatches(ctx, req, onBatch)
}

// JoinBatches is Join with pair delivery at the wire's batch
// granularity: onBatch (which may be nil) receives each NDJSON batch
// line's pairs as one slice, valid only until it returns — the
// amortized path a router merging several shard streams uses.
func (c *Client) JoinBatches(ctx context.Context, req JoinRequest, onBatch func(pairs [][2]uint32)) (*JoinSummary, error) {
	if c.PreferBinary {
		return c.JoinFrames(ctx, req, onBatch)
	}
	body, err := c.postStream(ctx, "/v1/join", req)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return joinLines(body, onBatch)
}

// joinLines consumes an NDJSON join stream body.
func joinLines(body io.Reader, onBatch func(pairs [][2]uint32)) (*JoinSummary, error) {
	var summary *JoinSummary
	err := scanLines(body, func(data []byte) error {
		var line JoinLine
		if err := json.Unmarshal(data, &line); err != nil {
			return fmt.Errorf("sjserved: bad response line: %w", err)
		}
		switch {
		case line.Error != nil:
			return line.Error
		case line.Summary != nil:
			summary = line.Summary
		default:
			if onBatch != nil && len(line.Pairs) > 0 {
				onBatch(line.Pairs)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("sjserved: join stream ended without a summary")
	}
	return summary, nil
}

// JoinCount is Join with CountOnly forced: the cheapest way to get a
// pair count, with no pair ever materialized or sent.
func (c *Client) JoinCount(ctx context.Context, req JoinRequest) (*JoinSummary, error) {
	req.CountOnly = true
	return c.Join(ctx, req, nil)
}

// Window runs a window query on the server, streaming each matching
// record to onRecord (which may be nil), and returns the summary.
func (c *Client) Window(ctx context.Context, req WindowRequest, onRecord func(RecordOut)) (*WindowSummary, error) {
	var onBatch func([]RecordOut)
	if onRecord != nil {
		onBatch = func(batch []RecordOut) {
			for _, r := range batch {
				onRecord(r)
			}
		}
	}
	return c.WindowBatches(ctx, req, onBatch)
}

// WindowBatches is Window with record delivery at the wire's batch
// granularity, mirroring JoinBatches.
func (c *Client) WindowBatches(ctx context.Context, req WindowRequest, onBatch func([]RecordOut)) (*WindowSummary, error) {
	if c.PreferBinary {
		return c.WindowFrames(ctx, req, onBatch)
	}
	body, err := c.postStream(ctx, "/v1/window", req)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return windowLines(body, onBatch)
}

// windowLines consumes an NDJSON window stream body.
func windowLines(body io.Reader, onBatch func([]RecordOut)) (*WindowSummary, error) {
	var summary *WindowSummary
	err := scanLines(body, func(data []byte) error {
		var line WindowLine
		if err := json.Unmarshal(data, &line); err != nil {
			return fmt.Errorf("sjserved: bad response line: %w", err)
		}
		switch {
		case line.Error != nil:
			return line.Error
		case line.Summary != nil:
			summary = line.Summary
		default:
			if onBatch != nil && len(line.Records) > 0 {
				onBatch(line.Records)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, fmt.Errorf("sjserved: window stream ended without a summary")
	}
	return summary, nil
}

// AppendRecords appends records to a cataloged relation and returns
// the server's summary. The records become visible to every query
// started after the call returns; queries already running keep their
// pinned view. Against a router, each record is placed on every shard
// whose stripe it overlaps, so the fleet keeps answering exactly like
// a single process.
func (c *Client) AppendRecords(ctx context.Context, relation string, recs []RecordIn) (*AppendSummary, error) {
	payload, err := json.Marshal(recs)
	if err != nil {
		return nil, err
	}
	return c.postAppend(ctx, relation, "application/json", bytes.NewReader(payload))
}

// AppendNDJSON streams a bulk append body — one RecordIn JSON object
// per line, the format cmd/sjgen emits with -ndjson — to the append
// endpoint. The body is not buffered client-side, so arbitrarily
// large loads stream straight through.
func (c *Client) AppendNDJSON(ctx context.Context, relation string, body io.Reader) (*AppendSummary, error) {
	return c.postAppend(ctx, relation, "application/x-ndjson", body)
}

// ParseRecords parses an append request body into records, selecting
// the format by content type the way the server does: anything
// mentioning "ndjson" is read one JSON record per line; otherwise the
// body is plain JSON, either a single record object or an array of
// them. Both sides of the wire (internal/server and the router's
// serving layer) parse through this one function, so the accepted
// formats cannot drift.
func ParseRecords(contentType string, body io.Reader) ([]RecordIn, error) {
	if strings.Contains(contentType, "ndjson") {
		var recs []RecordIn
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 64*1024), maxLineBytes)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var in RecordIn
			if err := json.Unmarshal(line, &in); err != nil {
				return nil, fmt.Errorf("bad record on line %d: %w", lineNo, err)
			}
			recs = append(recs, in)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("reading append body: %w", err)
		}
		return recs, nil
	}
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("reading append body: %w", err)
	}
	data = bytes.TrimSpace(data)
	switch {
	case len(data) == 0 || bytes.Equal(data, []byte("null")):
		return nil, nil
	case data[0] == '[':
		var recs []RecordIn
		if err := json.Unmarshal(data, &recs); err != nil {
			return nil, fmt.Errorf("bad record array: %w", err)
		}
		return recs, nil
	default:
		var in RecordIn
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, fmt.Errorf("bad record object: %w", err)
		}
		return []RecordIn{in}, nil
	}
}

// postAppend POSTs an append body and decodes the summary.
func (c *Client) postAppend(ctx context.Context, relation, contentType string, body io.Reader) (*AppendSummary, error) {
	path := "/v1/relations/" + url.PathEscape(relation) + "/records"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out AppendSummary
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// getJSON performs a GET and decodes a plain JSON response.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postStream POSTs a JSON body and returns the NDJSON response body,
// converting non-2xx responses to *APIError.
func (c *Client) postStream(ctx context.Context, path string, in any) (io.ReadCloser, error) {
	resp, err := c.postStreamAccept(ctx, path, in, "")
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// postStreamAccept is postStream with an optional Accept header,
// returning the whole response so callers can inspect the negotiated
// Content-Type.
func (c *Client) postStreamAccept(ctx context.Context, path string, in any, accept string) (*http.Response, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(requestIDHeader, id)
	}
	if id := ParentSpanFrom(ctx); id != "" {
		req.Header.Set(parentSpanHeader, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// scanLines feeds each non-empty NDJSON line to fn.
func scanLines(r io.Reader, fn func([]byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// decodeError turns a non-2xx response into an *APIError. When the
// body is not the expected {"error": {...}} shape (a proxy's bare
// 404, a load balancer's HTML error page), the error code is derived
// from the HTTP status, so the result still matches the right
// sentinel under errors.Is and the raw body is preserved in the
// message.
func decodeError(resp *http.Response) error {
	var wrapper struct {
		Error *APIError `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &wrapper); err != nil || wrapper.Error == nil || wrapper.Error.Code == "" {
		return &APIError{
			Status:  resp.StatusCode,
			Code:    codeForStatus(resp.StatusCode),
			Message: fmt.Sprintf("unexpected response: %s", bytes.TrimSpace(data)),
		}
	}
	wrapper.Error.Status = resp.StatusCode
	return wrapper.Error
}
