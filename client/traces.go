package client

import (
	"context"
	"net/url"
	"strconv"
)

// parentSpanHeader mirrors internal/httpapi.ParentSpanHeader; as with
// requestIDHeader, the client package cannot import httpapi, so the
// constant exists on both sides of the wire.
const parentSpanHeader = "X-Parent-Span"

// psKey is the context key carrying the caller's span ID.
type psKey struct{}

// WithParentSpan returns a context carrying the caller's span ID;
// every Client call under it sends the ID as X-Parent-Span, so the
// callee's recorded trace links back to the exact span — a router's
// scatter leg — that caused it.
func WithParentSpan(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, psKey{}, id)
}

// ParentSpanFrom returns the span ID carried by ctx, or "".
func ParentSpanFrom(ctx context.Context) string {
	id, _ := ctx.Value(psKey{}).(string)
	return id
}

// Traces lists the server's recent traces, newest first (n ≤ 0 for
// the server's default window).
func (c *Client) Traces(ctx context.Context, n int) ([]TraceSummary, error) {
	path := "/v1/traces"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out []TraceSummary
	if err := c.getJSON(ctx, path, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// TraceByID fetches one trace's full span tree. A trace that has been
// evicted from the server's bounded ring (or never existed) returns a
// *APIError matching ErrNotFound.
func (c *Client) TraceByID(ctx context.Context, id string) (*TraceDetail, error) {
	var out TraceDetail
	if err := c.getJSON(ctx, "/v1/traces/"+url.PathEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}
