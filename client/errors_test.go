package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestTypedErrors pins the non-2xx contract: whether the body is the
// service's {"error": {...}} shape or some proxy's bare text, the
// caller gets an *APIError that matches the right sentinel under
// errors.Is — no string matching needed to tell 422 needs-index from
// 404 unknown-relation.
func TestTypedErrors(t *testing.T) {
	cases := []struct {
		name     string
		status   int
		body     string
		sentinel error
		code     string
	}{
		{"wrapped 422", 422, `{"error":{"status":422,"code":"needs_index","message":"ST requires indexes"}}`, ErrNeedsIndex, CodeNeedsIndex},
		{"wrapped 404", 404, `{"error":{"status":404,"code":"not_found","message":"no such relation"}}`, ErrNotFound, CodeNotFound},
		{"bare 404", 404, "not found\n", ErrNotFound, CodeNotFound},
		{"proxy html 502", 502, "<html>bad gateway</html>", ErrUnavailable, CodeUnavailable},
		{"bare 504", 504, "upstream timeout", ErrCanceled, CodeCanceled},
		{"bare 500", 500, "boom", ErrInternal, CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer ts.Close()
			cl := New(ts.URL, nil)
			_, err := cl.JoinCount(context.Background(), JoinRequest{Left: "a", Right: "b"})
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("not an *APIError: %v", err)
			}
			if apiErr.Status != tc.status || apiErr.Code != tc.code {
				t.Fatalf("got status %d code %q, want %d %q", apiErr.Status, apiErr.Code, tc.status, tc.code)
			}
			// Exactly one sentinel matches.
			matches := 0
			for _, s := range []error{ErrBadRequest, ErrNotFound, ErrNeedsIndex, ErrCanceled, ErrUnavailable, ErrInternal} {
				if errors.Is(err, s) {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("error matches %d sentinels, want exactly 1", matches)
			}
		})
	}
}
