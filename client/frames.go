package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"unijoin/internal/geom"
	"unijoin/internal/wire"
)

// This file is the client side of the binary frame transport
// (internal/wire): Join/Window streaming over packed frames instead
// of NDJSON. The transport is negotiated — the request carries
// Accept: application/x-sj-frames, and the response's Content-Type
// says whether the server obliged. Against an old NDJSON-only server
// (which ignores the Accept header) or one answering 406, every
// method here falls back to the NDJSON stream transparently, so a
// caller never has to know what the far end speaks.

// frameError classifies a broken frame stream as the API's
// internal-error class: corruption or truncation on the wire is a
// failing peer, not a bad request, and must match ErrInternal under
// errors.Is just like a server-reported internal failure.
func frameError(format string, args ...any) *APIError {
	return &APIError{
		Status: http.StatusInternalServerError, Code: CodeInternal,
		Message: fmt.Sprintf(format, args...),
	}
}

// notAcceptable reports whether err is an HTTP 406 — a server
// refusing the offered media type, the explicit fallback signal.
func notAcceptable(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotAcceptable
}

// JoinFrames is JoinBatches over the binary transport: pairs arrive
// as packed frames, decoded and CRC-checked end to end, and are
// delivered to onBatch in the same batch granularity as the NDJSON
// path. Falls back to NDJSON when the server doesn't speak frames.
func (c *Client) JoinFrames(ctx context.Context, req JoinRequest, onBatch func(pairs [][2]uint32)) (*JoinSummary, error) {
	resp, err := c.postStreamAccept(ctx, "/v1/join", req, wire.ContentType)
	if err != nil {
		if notAcceptable(err) {
			return c.joinNDJSON(ctx, req, onBatch)
		}
		return nil, err
	}
	defer resp.Body.Close()
	if !wire.IsFrameResponse(resp.Header.Get("Content-Type")) {
		return joinLines(resp.Body, onBatch)
	}
	return decodeJoinFrames(resp.Body, onBatch)
}

// joinNDJSON re-issues the join over plain NDJSON — the 406 fallback,
// which must not recurse through PreferBinary.
func (c *Client) joinNDJSON(ctx context.Context, req JoinRequest, onBatch func([][2]uint32)) (*JoinSummary, error) {
	body, err := c.postStream(ctx, "/v1/join", req)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return joinLines(body, onBatch)
}

// decodeJoinFrames consumes a join frame stream: DATA (pairs) frames
// to onBatch, one terminal SUMMARY or ERROR, then END. Anything
// malformed — corruption, truncation, a stream that stops without its
// END frame — comes back as the internal-error class.
func decodeJoinFrames(body io.Reader, onBatch func([][2]uint32)) (*JoinSummary, error) {
	dec := wire.NewDecoder(body)
	var pairs [][2]uint32
	var summary *JoinSummary
	var apiErr *APIError
	for {
		f, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return nil, frameError("sjserved: join frame stream ended without an END frame")
		}
		if err != nil {
			return nil, frameError("sjserved: %v", err)
		}
		switch f.Type {
		case wire.TypePairs:
			if pairs, err = f.Pairs(pairs[:0]); err != nil {
				return nil, frameError("sjserved: %v", err)
			}
			if onBatch != nil && len(pairs) > 0 {
				onBatch(pairs)
			}
		case wire.TypeSummary:
			summary = new(JoinSummary)
			if err := json.Unmarshal(f.Payload, summary); err != nil {
				return nil, frameError("sjserved: bad summary frame: %v", err)
			}
		case wire.TypeError:
			apiErr = new(APIError)
			if err := json.Unmarshal(f.Payload, apiErr); err != nil {
				return nil, frameError("sjserved: bad error frame: %v", err)
			}
		case wire.TypeEnd:
			if apiErr != nil {
				return nil, apiErr
			}
			if summary == nil {
				return nil, frameError("sjserved: join frame stream ended without a summary")
			}
			return summary, nil
		default:
			return nil, frameError("sjserved: unexpected %s frame in a join stream", f.Type)
		}
	}
}

// WindowFrames is WindowBatches over the binary transport: records
// arrive packed in the engine's 20-byte layout and are converted to
// RecordOut at the edge. Falls back to NDJSON when the server doesn't
// speak frames.
func (c *Client) WindowFrames(ctx context.Context, req WindowRequest, onBatch func([]RecordOut)) (*WindowSummary, error) {
	resp, err := c.postStreamAccept(ctx, "/v1/window", req, wire.ContentType)
	if err != nil {
		if notAcceptable(err) {
			return c.windowNDJSON(ctx, req, onBatch)
		}
		return nil, err
	}
	defer resp.Body.Close()
	if !wire.IsFrameResponse(resp.Header.Get("Content-Type")) {
		return windowLines(resp.Body, onBatch)
	}
	return decodeWindowFrames(resp.Body, onBatch)
}

// windowNDJSON re-issues the window query over plain NDJSON.
func (c *Client) windowNDJSON(ctx context.Context, req WindowRequest, onBatch func([]RecordOut)) (*WindowSummary, error) {
	body, err := c.postStream(ctx, "/v1/window", req)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return windowLines(body, onBatch)
}

// decodeWindowFrames consumes a window frame stream, mirroring
// decodeJoinFrames with RECORDS payloads.
func decodeWindowFrames(body io.Reader, onBatch func([]RecordOut)) (*WindowSummary, error) {
	dec := wire.NewDecoder(body)
	var recs []geom.Record
	var out []RecordOut
	var summary *WindowSummary
	var apiErr *APIError
	for {
		f, err := dec.Next()
		if errors.Is(err, io.EOF) {
			return nil, frameError("sjserved: window frame stream ended without an END frame")
		}
		if err != nil {
			return nil, frameError("sjserved: %v", err)
		}
		switch f.Type {
		case wire.TypeRecords:
			if recs, err = f.Records(recs[:0]); err != nil {
				return nil, frameError("sjserved: %v", err)
			}
			if onBatch != nil && len(recs) > 0 {
				out = out[:0]
				for _, rec := range recs {
					out = append(out, RecordOut{ID: rec.ID, Rect: Rect{
						XLo: float64(rec.Rect.XLo), YLo: float64(rec.Rect.YLo),
						XHi: float64(rec.Rect.XHi), YHi: float64(rec.Rect.YHi),
					}})
				}
				onBatch(out)
			}
		case wire.TypeSummary:
			summary = new(WindowSummary)
			if err := json.Unmarshal(f.Payload, summary); err != nil {
				return nil, frameError("sjserved: bad summary frame: %v", err)
			}
		case wire.TypeError:
			apiErr = new(APIError)
			if err := json.Unmarshal(f.Payload, apiErr); err != nil {
				return nil, frameError("sjserved: bad error frame: %v", err)
			}
		case wire.TypeEnd:
			if apiErr != nil {
				return nil, apiErr
			}
			if summary == nil {
				return nil, frameError("sjserved: window frame stream ended without a summary")
			}
			return summary, nil
		default:
			return nil, frameError("sjserved: unexpected %s frame in a window stream", f.Type)
		}
	}
}

// JoinRawFrames is the relay form of JoinFrames: every DATA frame is
// handed to onFrame as its exact wire bytes (header + payload, CRC
// untouched and unverified — the end consumer's check covers the
// whole journey), valid only until onFrame returns. Only the terminal
// SUMMARY or ERROR frame is parsed (and CRC-verified, since this
// process consumes it). Against an NDJSON server, batches are
// re-encoded into frames here, so the caller always sees frames.
// This is what a router's zero-decode scatter path runs per shard.
func (c *Client) JoinRawFrames(ctx context.Context, req JoinRequest, onFrame func(raw []byte)) (*JoinSummary, error) {
	resp, err := c.postStreamAccept(ctx, "/v1/join", req, wire.ContentType)
	if err != nil {
		if notAcceptable(err) {
			return c.joinNDJSON(ctx, req, reframePairs(onFrame))
		}
		return nil, err
	}
	defer resp.Body.Close()
	if !wire.IsFrameResponse(resp.Header.Get("Content-Type")) {
		return joinLines(resp.Body, reframePairs(onFrame))
	}
	var summary *JoinSummary
	raw, err := relayFrames(resp.Body, wire.TypePairs, onFrame)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &summary); err != nil {
		return nil, frameError("sjserved: bad summary frame: %v", err)
	}
	return summary, nil
}

// WindowRawFrames is JoinRawFrames for window queries: RECORDS frames
// relayed raw, summary parsed, NDJSON shard responses re-framed.
func (c *Client) WindowRawFrames(ctx context.Context, req WindowRequest, onFrame func(raw []byte)) (*WindowSummary, error) {
	resp, err := c.postStreamAccept(ctx, "/v1/window", req, wire.ContentType)
	if err != nil {
		if notAcceptable(err) {
			return c.windowNDJSON(ctx, req, reframeRecords(onFrame))
		}
		return nil, err
	}
	defer resp.Body.Close()
	if !wire.IsFrameResponse(resp.Header.Get("Content-Type")) {
		return windowLines(resp.Body, reframeRecords(onFrame))
	}
	var summary *WindowSummary
	raw, err := relayFrames(resp.Body, wire.TypeRecords, onFrame)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &summary); err != nil {
		return nil, frameError("sjserved: bad summary frame: %v", err)
	}
	return summary, nil
}

// relayFrames scans a frame stream without decoding payloads: frames
// of dataType go to onFrame verbatim; the terminal SUMMARY payload is
// CRC-verified and returned for the caller to parse; an ERROR frame
// becomes the shard's *APIError. The stream must close with END.
func relayFrames(body io.Reader, dataType wire.Type, onFrame func(raw []byte)) ([]byte, error) {
	sc := wire.NewScanner(body)
	var summaryPayload []byte
	var apiErr *APIError
	for {
		t, raw, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return nil, frameError("sjserved: frame stream ended without an END frame")
		}
		if err != nil {
			return nil, frameError("sjserved: %v", err)
		}
		switch t {
		case dataType:
			if onFrame != nil {
				onFrame(raw)
			}
		case wire.TypeSummary, wire.TypeError:
			if err := wire.Verify(raw); err != nil {
				return nil, frameError("sjserved: %v", err)
			}
			if t == wire.TypeSummary {
				summaryPayload = append(summaryPayload[:0], raw[wire.HeaderSize:]...)
				continue
			}
			apiErr = new(APIError)
			if err := json.Unmarshal(raw[wire.HeaderSize:], apiErr); err != nil {
				return nil, frameError("sjserved: bad error frame: %v", err)
			}
		case wire.TypeEnd:
			if apiErr != nil {
				return nil, apiErr
			}
			if summaryPayload == nil {
				return nil, frameError("sjserved: frame stream ended without a summary")
			}
			return summaryPayload, nil
		default:
			return nil, frameError("sjserved: unexpected %s frame in the stream", t)
		}
	}
}

// reframePairs adapts a raw-frame callback to an NDJSON batch
// callback by packing each batch into a PAIRS frame — how an old
// NDJSON-only shard still feeds a frame-relaying router.
func reframePairs(onFrame func(raw []byte)) func([][2]uint32) {
	if onFrame == nil {
		return nil
	}
	var buf []byte
	return func(batch [][2]uint32) {
		payload := make([]byte, 0, len(batch)*wire.PairSize)
		for _, p := range batch {
			var cell [wire.PairSize]byte
			geom.EncodePair(cell[:], geom.Pair{Left: p[0], Right: p[1]})
			payload = append(payload, cell[:]...)
		}
		buf = wire.AppendFrame(buf[:0], wire.TypePairs, payload)
		onFrame(buf)
	}
}

// reframeRecords adapts a raw-frame callback to an NDJSON record
// batch callback, mirroring reframePairs.
func reframeRecords(onFrame func(raw []byte)) func([]RecordOut) {
	if onFrame == nil {
		return nil
	}
	var buf []byte
	return func(batch []RecordOut) {
		payload := make([]byte, 0, len(batch)*wire.RecordSize)
		for _, r := range batch {
			var cell [wire.RecordSize]byte
			geom.EncodeRecord(cell[:], geom.Record{
				Rect: geom.NewRect(
					geom.Coord(r.Rect.XLo), geom.Coord(r.Rect.YLo),
					geom.Coord(r.Rect.XHi), geom.Coord(r.Rect.YHi)),
				ID: r.ID,
			})
			payload = append(payload, cell[:]...)
		}
		buf = wire.AppendFrame(buf[:0], wire.TypeRecords, payload)
		onFrame(buf)
	}
}
