package client

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"unijoin/internal/wire"
)

// frameJoinBody builds a well-formed binary join response: one pairs
// frame, a summary, and END.
func frameJoinBody(t *testing.T, pairs [][2]uint32, total int64) []byte {
	t.Helper()
	var payload []byte
	for _, p := range pairs {
		payload = append(payload, byte(p[0]), byte(p[0]>>8), byte(p[0]>>16), byte(p[0]>>24),
			byte(p[1]), byte(p[1]>>8), byte(p[1]>>16), byte(p[1]>>24))
	}
	body := wire.AppendFrame(nil, wire.TypePairs, payload)
	body = wire.AppendFrame(body, wire.TypeSummary,
		[]byte(`{"left":"a","right":"b","algorithm":"PQ","pairs":`+itoa(total)+`}`))
	return wire.AppendFrame(body, wire.TypeEnd, nil)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// stub returns a client against a server running fn.
func stub(t *testing.T, fn http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(fn)
	t.Cleanup(ts.Close)
	cl := New(ts.URL, nil)
	cl.PreferBinary = true
	return cl
}

// TestFramesNegotiated covers the happy path: the server honors the
// Accept header and the client decodes the frame stream.
func TestFramesNegotiated(t *testing.T) {
	body := frameJoinBody(t, [][2]uint32{{1, 2}, {3, 4}}, 2)
	cl := stub(t, func(w http.ResponseWriter, r *http.Request) {
		if !wire.Negotiates(r) {
			t.Error("PreferBinary client did not send the Accept header")
		}
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(body)
	})
	var got [][2]uint32
	sum, err := cl.Join(context.Background(), JoinRequest{Left: "a", Right: "b"},
		func(l, r uint32) { got = append(got, [2]uint32{l, r}) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 2 || len(got) != 2 || got[0] != [2]uint32{1, 2} || got[1] != [2]uint32{3, 4} {
		t.Fatalf("pairs %v, summary %+v", got, sum)
	}
}

// TestFramesFallbackToNDJSON covers the negotiation fallback: an old
// server that ignores the Accept header and streams NDJSON must still
// be fully usable through a PreferBinary client.
func TestFramesFallbackToNDJSON(t *testing.T) {
	cl := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"pairs":[[5,6]]}`+"\n")
		io.WriteString(w, `{"summary":{"left":"a","right":"b","algorithm":"PQ","pairs":1,"left_records":1,"right_records":1,"elapsed_ms":1}}`+"\n")
	})
	var got [][2]uint32
	sum, err := cl.Join(context.Background(), JoinRequest{Left: "a", Right: "b"},
		func(l, r uint32) { got = append(got, [2]uint32{l, r}) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pairs != 1 || len(got) != 1 || got[0] != [2]uint32{5, 6} {
		t.Fatalf("fallback stream: pairs %v, summary %+v", got, sum)
	}
}

// TestFramesFallbackOn406 covers the explicit refusal: a server
// answering 406 Not Acceptable to the frame offer gets the request
// re-issued over plain NDJSON.
func TestFramesFallbackOn406(t *testing.T) {
	cl := stub(t, func(w http.ResponseWriter, r *http.Request) {
		if wire.Negotiates(r) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotAcceptable)
			io.WriteString(w, `{"error":{"code":"bad_request","message":"no frames here"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"summary":{"left":"a","right":"b","algorithm":"PQ","pairs":0,"left_records":0,"right_records":0,"elapsed_ms":1}}`+"\n")
	})
	sum, err := cl.Join(context.Background(), JoinRequest{Left: "a", Right: "b"}, nil)
	if err != nil {
		t.Fatalf("406 fallback: %v", err)
	}
	if sum.Pairs != 0 {
		t.Fatalf("406 fallback summary: %+v", sum)
	}
}

// TestCorruptFrameStreamIsInternal pins the error contract of the
// binary transport: corruption and truncation both surface as
// *APIError matching ErrInternal — a broken peer, not a bad request.
func TestCorruptFrameStreamIsInternal(t *testing.T) {
	good := frameJoinBody(t, [][2]uint32{{1, 2}}, 1)
	cases := []struct {
		name string
		body []byte
	}{
		{"garbage", []byte("this is not a frame stream at all")},
		{"bad crc", func() []byte {
			b := append([]byte(nil), good...)
			b[wire.HeaderSize] ^= 0xFF
			return b
		}()},
		{"truncated mid-frame", good[:wire.HeaderSize+3]},
		{"missing end", good[:len(good)-wire.HeaderSize]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl := stub(t, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", wire.ContentType)
				w.Write(tc.body)
			})
			_, err := cl.Join(context.Background(), JoinRequest{Left: "a", Right: "b"}, nil)
			if err == nil {
				t.Fatal("corrupt stream produced no error")
			}
			if !errors.Is(err, ErrInternal) {
				t.Fatalf("got %v, want the ErrInternal class", err)
			}
		})
	}
}

// TestWindowFramesRoundTrip checks the record path end to end at the
// client level, including the float32 packing.
func TestWindowFramesRoundTrip(t *testing.T) {
	// One RECORDS frame: rect (1.5, 2.5, 3.5, 4.5), ID 42.
	payload := make([]byte, 0, wire.RecordSize)
	for _, f := range []float32{1.5, 2.5, 3.5, 4.5} {
		bits := math.Float32bits(f)
		payload = append(payload, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	payload = append(payload, 42, 0, 0, 0)
	body := wire.AppendFrame(nil, wire.TypeRecords, payload)
	body = wire.AppendFrame(body, wire.TypeSummary, []byte(`{"relation":"a","records":1,"indexed":true,"elapsed_ms":1}`))
	body = wire.AppendFrame(body, wire.TypeEnd, nil)

	cl := stub(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", wire.ContentType)
		w.Write(body)
	})
	var got []RecordOut
	win := Rect{XHi: 10, YHi: 10}
	sum, err := cl.Window(context.Background(), WindowRequest{Relation: "a", Window: &win},
		func(rec RecordOut) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 1 || len(got) != 1 {
		t.Fatalf("records %v, summary %+v", got, sum)
	}
	want := RecordOut{ID: 42, Rect: Rect{XLo: 1.5, YLo: 2.5, XHi: 3.5, YHi: 4.5}}
	if got[0] != want {
		t.Fatalf("record %+v, want %+v", got[0], want)
	}
}
