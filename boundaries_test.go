package unijoin

import (
	"context"
	"reflect"
	"testing"

	"unijoin/internal/parallel"
)

// TestStripeBoundariesMatchEngine pins the planner/engine agreement:
// the boundaries a catalog exports for k shards are exactly the
// boundaries the parallel engine would sweep for k partitions of the
// same inputs.
func TestStripeBoundariesMatchEngine(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	c := NewCatalog()
	c.Workspace().SetUniverse(u)
	ra := demoRecords(1, 4000, u)
	rb := demoRecords(2, 3000, u)
	if _, err := c.Load("a", ra, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load("b", rb, false); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 7} {
		got, err := c.StripeBoundaries(k, "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		want := parallel.NewPartitioner(u, k, ra, rb).Boundaries()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: catalog boundaries %v != engine boundaries %v", k, got, want)
		}
	}
	if _, err := c.StripeBoundaries(4, "nope"); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

// TestStripeBoundariesCached verifies the satellite contract: the
// x-center sample is computed once per relation — the second request
// touches no disk pages — and a reloaded name starts cold.
func TestStripeBoundariesCached(t *testing.T) {
	u := NewRect(0, 0, 1000, 1000)
	c := NewCatalog()
	c.Workspace().SetUniverse(u)
	rel, err := c.Load("a", demoRecords(3, 4000, u), false)
	if err != nil {
		t.Fatal(err)
	}
	first, err := rel.StripeBoundaries(4)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Workspace().Store().Counters()
	second, err := rel.StripeBoundaries(4)
	if err != nil {
		t.Fatal(err)
	}
	if delta := c.Workspace().Store().Counters().Sub(before); delta.Total() != 0 {
		t.Fatalf("second StripeBoundaries call performed %d page accesses, want 0 (cached)", delta.Total())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached boundaries differ: %v vs %v", first, second)
	}

	// A parallel query on the relation must reuse (or fill) the same
	// cache and agree with the planner's stripes.
	other, err := c.Load("b", demoRecords(4, 3000, u), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Workspace().Query(rel, other).Algorithm(AlgParallel).CountOnly().Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Reloading the name yields a fresh Relation whose sample is
	// recomputed from the new records.
	if !c.Drop("a") {
		t.Fatal("drop failed")
	}
	rel2, err := c.Load("a", demoRecords(99, 4000, u), false)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := rel2.StripeBoundaries(4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first, reloaded) {
		t.Fatal("reloaded relation returned the old relation's boundaries")
	}
}
